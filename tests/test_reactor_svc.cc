// Multi-reactor serving-tier tests (DESIGN.md section 14): responses
// must be byte-identical at any reactor count and over either accept
// sharding scheme (SO_REUSEPORT listeners or the acceptor + fd-handoff
// fallback), a drain must quiesce every reactor before the listeners
// close, a SIGHUP-style reload under concurrent load must never serve a
// torn dataset, EMFILE accept failures must pause and re-arm the
// listener instead of busy-spinning, the daemon must serve IPv6
// loopback, and the zero-copy kArchiveSlice path must round-trip a
// parseable `.s2sb` image whose record counts match the ingest.
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exec/pool.h"
#include "io/binrec.h"
#include "obs/metrics.h"
#include "svc/client.h"
#include "svc/dataset.h"
#include "svc/protocol.h"
#include "svc/server.h"

namespace s2s {
namespace {

svc::FixtureParams fast_fixture_params() {
  svc::FixtureParams params;
  params.trace_days = 7.0;
  params.ping_days = 3.0;
  params.max_trace_pairs = 6;
  params.max_ping_pairs = 24;
  return params;
}

struct ReactorWorld {
  svc::DatasetConfig cfg;
  std::unique_ptr<svc::Dataset> dataset;
};

ReactorWorld& world() {
  static ReactorWorld* w = [] {
    auto* world = new ReactorWorld;
    world->cfg.archive_path = ::testing::TempDir() + "s2s_test_reactor_" +
                              std::to_string(::getpid()) + ".s2sb";
    std::string error;
    if (!svc::write_fixture_archive(world->cfg.archive_path, world->cfg,
                                    fast_fixture_params(), error)) {
      ADD_FAILURE() << "fixture write failed: " << error;
    }
    world->dataset = std::make_unique<svc::Dataset>(world->cfg);
    if (!world->dataset->load(error)) {
      ADD_FAILURE() << "fixture load failed: " << error;
    }
    return world;
  }();
  return *w;
}

class TestServer {
 public:
  explicit TestServer(svc::Dataset& dataset, unsigned threads = 2,
                      svc::ServerConfig cfg = {})
      : pool_(threads), server_(dataset, &pool_, cfg) {
    std::string error;
    if (!server_.start(error)) {
      ADD_FAILURE() << "server start failed: " << error;
      return;
    }
    thread_ = std::thread([this] { server_.serve(); });
  }

  ~TestServer() { drain(); }

  void drain() {
    if (thread_.joinable()) {
      server_.request_drain();
      thread_.join();
    }
  }

  svc::Server& server() { return server_; }
  std::uint16_t port() const { return server_.port(); }

  svc::Client connect() {
    svc::Client client;
    std::string error;
    EXPECT_TRUE(client.connect("127.0.0.1", server_.port(), error)) << error;
    return client;
  }

 private:
  exec::ThreadPool pool_;
  svc::Server server_;
  std::thread thread_;
};

/// One request of every cacheable type against the fixture's first pair,
/// plus a ping — the byte-identity workload.
std::vector<std::pair<svc::MsgType, std::string>> identity_workload() {
  const auto pairs = world().dataset->trace_pairs();
  EXPECT_FALSE(pairs.empty());
  svc::PairQuery q;
  q.src = pairs.front().src;
  q.dst = pairs.front().dst;
  q.family = pairs.front().family;
  std::vector<std::pair<svc::MsgType, std::string>> out;
  out.emplace_back(svc::MsgType::kPingEcho, "");
  out.emplace_back(svc::MsgType::kPairRtt, svc::encode_pair_query(q));
  out.emplace_back(svc::MsgType::kPathPrevalence, svc::encode_pair_query(q));
  out.emplace_back(svc::MsgType::kCongestionVerdict,
                   svc::encode_pair_query(q));
  out.emplace_back(svc::MsgType::kDualStackDelta,
                   svc::encode_dualstack_query({q.src, q.dst}));
  for (const int figure : {1, 2}) {
    svc::FigureQuery f;
    f.figure = static_cast<std::uint8_t>(figure);
    out.emplace_back(svc::MsgType::kFigureDigest,
                     svc::encode_figure_query(f));
  }
  return out;
}

std::string must_call(svc::Client& client, svc::MsgType type,
                      std::uint8_t flags, std::string_view payload) {
  svc::MsgType rtype;
  std::string rpayload;
  std::string error;
  EXPECT_TRUE(client.call(type, flags, payload, &rtype, &rpayload, error))
      << error;
  EXPECT_EQ(rtype, svc::MsgType::kOk)
      << svc::type_name(type) << ": " << rpayload;
  return rpayload;
}

std::vector<std::string> run_workload(
    TestServer& ts,
    const std::vector<std::pair<svc::MsgType, std::string>>& workload) {
  svc::Client client = ts.connect();
  std::vector<std::string> out;
  for (const auto& [type, payload] : workload) {
    out.push_back(must_call(client, type, 0, payload));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Byte identity across reactor counts and sharding schemes.
// ---------------------------------------------------------------------------

TEST(SvcReactor, ResponsesAreByteIdenticalAtAnyReactorCount) {
  const auto workload = identity_workload();
  TestServer one(*world().dataset, 2, {});
  const auto want = run_workload(one, workload);

  svc::Dataset shared(world().cfg, &world().dataset->net());
  std::string error;
  ASSERT_TRUE(shared.load(error)) << error;

  svc::ServerConfig four;
  four.reactors = 4;
  TestServer wide(shared, 2, four);
  EXPECT_EQ(wide.server().reactor_count(), 4u);
  EXPECT_EQ(run_workload(wide, workload), want);

  svc::ServerConfig handoff;
  handoff.reactors = 4;
  handoff.use_reuseport = false;
  TestServer fallback(shared, 2, handoff);
  EXPECT_FALSE(fallback.server().reuseport_active());
  EXPECT_EQ(run_workload(fallback, workload), want);
}

TEST(SvcReactor, HandoffFallbackDistributesAcceptsRoundRobin) {
  svc::ServerConfig cfg;
  cfg.reactors = 4;
  cfg.use_reuseport = false;
  TestServer ts(*world().dataset, 2, cfg);
  ASSERT_EQ(ts.server().reactor_count(), 4u);
  EXPECT_FALSE(ts.server().reuseport_active());

  // Hold all 12 connections open; a completed ping proves the adopting
  // reactor registered the fd (accepted_ is counted at adoption).
  std::vector<svc::Client> clients;
  for (int i = 0; i < 12; ++i) {
    clients.push_back(ts.connect());
    must_call(clients.back(), svc::MsgType::kPingEcho, 0, "");
  }
  const auto accepted = ts.server().reactor_accepted();
  ASSERT_EQ(accepted.size(), 4u);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < accepted.size(); ++i) {
    EXPECT_EQ(accepted[i], 3u) << "reactor " << i;
    total += accepted[i];
  }
  EXPECT_EQ(total, 12u);
}

TEST(SvcReactor, ReuseportListenersServeEveryConnection) {
  svc::ServerConfig cfg;
  cfg.reactors = 4;
  TestServer ts(*world().dataset, 2, cfg);
  ASSERT_EQ(ts.server().reactor_count(), 4u);
  // The kernel hashes connections by 4-tuple, so the spread is not
  // deterministic — but every connection must land somewhere and serve.
  std::vector<svc::Client> clients;
  for (int i = 0; i < 12; ++i) {
    clients.push_back(ts.connect());
    must_call(clients.back(), svc::MsgType::kPingEcho, 0, "");
  }
  const auto accepted = ts.server().reactor_accepted();
  std::uint64_t total = 0;
  for (const auto n : accepted) total += n;
  EXPECT_EQ(total, 12u);
}

// ---------------------------------------------------------------------------
// Lifecycle: drain quiesces all reactors; reload never tears the dataset.
// ---------------------------------------------------------------------------

TEST(SvcReactor, DrainQuiescesAllReactorsBeforeListenersClose) {
  svc::ServerConfig cfg;
  cfg.reactors = 4;
  TestServer ts(*world().dataset, 2, cfg);
  const std::uint16_t port = ts.port();

  // One in-flight figure request per connection, spread over enough
  // connections that several reactors hold work when the drain lands.
  std::vector<svc::Client> clients;
  std::string error;
  svc::FigureQuery f;
  f.figure = 2;
  const std::string frame = svc::encode_frame(
      svc::MsgType::kFigureDigest, 0, svc::encode_figure_query(f));
  for (int i = 0; i < 8; ++i) {
    clients.push_back(ts.connect());
    ASSERT_TRUE(clients.back().send_bytes(frame, error)) << error;
  }
  ts.server().request_drain();
  // Every request raced the drain; every response must still arrive.
  for (auto& client : clients) {
    svc::MsgType rtype;
    std::string rpayload;
    ASSERT_TRUE(client.read_frame(&rtype, &rpayload, error)) << error;
    EXPECT_EQ(rtype, svc::MsgType::kOk) << rpayload;
  }
  ts.drain();
  // Only after every reactor quiesced do the listeners close.
  svc::Client late;
  EXPECT_FALSE(late.connect("127.0.0.1", port, error, 1000));
  EXPECT_GE(ts.server().requests_served(), 8u);
}

TEST(SvcReactor, ReloadUnderLoadNeverServesATornDataset) {
  const auto workload = identity_workload();
  TestServer baseline_ts(*world().dataset, 2, {});
  const auto want = run_workload(baseline_ts, workload);
  baseline_ts.drain();

  svc::Dataset shared(world().cfg, &world().dataset->net());
  std::string error;
  ASSERT_TRUE(shared.load(error)) << error;
  svc::ServerConfig cfg;
  cfg.reactors = 4;
  TestServer ts(shared, 2, cfg);

  // Four client threads hammer the workload while reloads land between
  // (and under) their requests. The archive file is unchanged, so the
  // digest is stable and every response must stay byte-identical: any
  // torn snapshot (digest from one dataset, execution on another) would
  // break identity or crash.
  std::vector<std::thread> threads;
  std::vector<int> mismatches(4, 0);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 3; ++round) {
        svc::Client client;
        std::string cerr;
        if (!client.connect("127.0.0.1", ts.port(), cerr)) {
          ++mismatches[static_cast<std::size_t>(t)];
          return;
        }
        for (std::size_t i = 0; i < workload.size(); ++i) {
          svc::MsgType rtype;
          std::string rpayload;
          if (!client.call(workload[i].first, 0, workload[i].second, &rtype,
                           &rpayload, cerr) ||
              rtype != svc::MsgType::kOk || rpayload != want[i]) {
            ++mismatches[static_cast<std::size_t>(t)];
          }
        }
      }
    });
  }
  for (int i = 0; i < 3; ++i) {
    ts.server().request_reload();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < 4; ++t) EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  ts.drain();
  EXPECT_GE(ts.server().reloads(), 1u);
  // Post-reload the server keeps serving byte-identical responses.
}

// ---------------------------------------------------------------------------
// EMFILE: pause the listener, count, re-arm — never busy-spin.
// ---------------------------------------------------------------------------

TEST(SvcReactor, EmfileAcceptPausesCountsAndRearms) {
  svc::ServerConfig cfg;
  cfg.accept_rearm_ms = 20;
  TestServer ts(*world().dataset, 2, cfg);
  {
    svc::Client warm = ts.connect();
    must_call(warm, svc::MsgType::kPingEcho, 0, "");
  }

  // A client socket made before the fd squeeze: its connect() completes
  // in the listener's backlog even while the server cannot accept().
  const int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);

  rlimit saved{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &saved), 0);
  rlimit squeezed = saved;
  if (squeezed.rlim_cur > 512) {
    squeezed.rlim_cur = 512;
    ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &squeezed), 0);
  }
  // Hoard every remaining fd so the next accept() fails with EMFILE.
  std::vector<int> hoard;
  while (true) {
    int p[2];
    if (::pipe(p) != 0) break;
    hoard.push_back(p[0]);
    hoard.push_back(p[1]);
    ASSERT_LT(hoard.size(), 4096u) << "fd limit did not bite";
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ts.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(probe, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);

  // The reactor must observe EMFILE, count it, and unwatch the listener
  // instead of spinning on its readability.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (ts.server().accept_emfile() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(ts.server().accept_emfile(), 1u);

  for (const int fd : hoard) ::close(fd);
  ::setrlimit(RLIMIT_NOFILE, &saved);

  // After accept_rearm_ms the listener re-arms and the backlogged
  // connection gets accepted and served.
  timeval tv{};
  tv.tv_sec = 5;
  ::setsockopt(probe, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  const std::string ping = svc::encode_frame(svc::MsgType::kPingEcho, 0, "");
  ASSERT_EQ(::send(probe, ping.data(), ping.size(), 0),
            static_cast<ssize_t>(ping.size()));
  std::string response;
  while (response.size() < svc::kFrameHeaderBytes) {
    char buf[64];
    const ssize_t n = ::recv(probe, buf, sizeof buf, 0);
    ASSERT_GT(n, 0) << "backlogged connection never served after re-arm";
    response.append(buf, static_cast<std::size_t>(n));
  }
  svc::FrameHeader header;
  ASSERT_EQ(svc::parse_frame_header(
                reinterpret_cast<const unsigned char*>(response.data()),
                header),
            svc::HeaderStatus::kOk);
  EXPECT_EQ(header.type, svc::MsgType::kOk);
  ::close(probe);

  // And a fresh connection works again too.
  svc::Client again = ts.connect();
  must_call(again, svc::MsgType::kPingEcho, 0, "");
  EXPECT_GT(ts.server().accept_emfile(), 0u);
}

// ---------------------------------------------------------------------------
// Dual-stack listening.
// ---------------------------------------------------------------------------

TEST(SvcReactor, IPv6LoopbackServes) {
  exec::ThreadPool pool(2);
  svc::ServerConfig cfg;
  cfg.bind_address = "::1";
  cfg.reactors = 2;
  svc::Server server(*world().dataset, &pool, cfg);
  std::string error;
  if (!server.start(error)) {
    GTEST_SKIP() << "no IPv6 loopback here: " << error;
  }
  std::thread serve([&server] { server.serve(); });
  svc::Client client;
  ASSERT_TRUE(client.connect("::1", server.port(), error)) << error;
  must_call(client, svc::MsgType::kPingEcho, 0, "");
  const auto pairs = world().dataset->trace_pairs();
  ASSERT_FALSE(pairs.empty());
  svc::PairQuery q;
  q.src = pairs.front().src;
  q.dst = pairs.front().dst;
  q.family = pairs.front().family;
  must_call(client, svc::MsgType::kPairRtt, 0, svc::encode_pair_query(q));
  server.request_drain();
  serve.join();
  EXPECT_GE(server.requests_served(), 2u);
}

// ---------------------------------------------------------------------------
// Zero-copy archive slices.
// ---------------------------------------------------------------------------

TEST(SvcReactor, ArchiveSliceRoundTripsAsAParseableArchive) {
  ASSERT_TRUE(world().dataset->mmap_resident());
  TestServer ts(*world().dataset);
  svc::Client client = ts.connect();

  // A slice spanning all time returns the whole archive: the payload is
  // a valid footerless `.s2sb` image whose record count matches ingest.
  svc::SliceQuery q;
  q.t0_s = 0;
  q.t1_s = std::int64_t{1} << 40;
  const std::string image = must_call(client, svc::MsgType::kArchiveSlice, 0,
                                      svc::encode_slice_query(q));
  io::BinRecordMmapReader reader(image.data(), image.size());
  ASSERT_TRUE(reader.ok()) << reader.error();
  std::size_t traces = 0, pings = 0;
  reader.read_all([&](const auto&) { ++traces; },
                  [&](const auto&) { ++pings; });
  EXPECT_EQ(reader.corrupt_blocks(), 0u);
  EXPECT_EQ(traces + pings, world().dataset->ingest().records);
  EXPECT_GT(traces, 0u);
  EXPECT_GT(pings, 0u);

  // A window past the campaign intersects nothing: still a valid image,
  // zero records.
  q.t0_s = (std::int64_t{1} << 40) + 1;
  q.t1_s = q.t0_s + 10;
  const std::string empty = must_call(
      client, svc::MsgType::kArchiveSlice, 0, svc::encode_slice_query(q));
  io::BinRecordMmapReader empty_reader(empty.data(), empty.size());
  ASSERT_TRUE(empty_reader.ok()) << empty_reader.error();
  std::size_t none = 0;
  empty_reader.read_all([&](const auto&) { ++none; },
                        [&](const auto&) { ++none; });
  EXPECT_EQ(none, 0u);

  // An inverted window is a malformed request, not a server error.
  svc::MsgType rtype;
  std::string rpayload;
  std::string error;
  std::string inverted(16, '\0');
  inverted[0] = 9;  // t0 = 9 > t1 = 0
  ASSERT_TRUE(client.call(svc::MsgType::kArchiveSlice, 0, inverted, &rtype,
                          &rpayload, error))
      << error;
  EXPECT_EQ(rtype, svc::MsgType::kError);
  EXPECT_NE(rpayload.find("bad_request"), std::string::npos) << rpayload;
  // The connection survives the rejection.
  must_call(client, svc::MsgType::kPingEcho, 0, "");
}

TEST(SvcReactor, SliceIsByteIdenticalAcrossReactorCounts) {
  svc::Dataset shared(world().cfg, &world().dataset->net());
  std::string error;
  ASSERT_TRUE(shared.load(error)) << error;
  TestServer one(*world().dataset, 2, {});
  svc::ServerConfig cfg;
  cfg.reactors = 4;
  TestServer four(shared, 2, cfg);
  svc::Client c1 = one.connect();
  svc::Client c4 = four.connect();
  svc::SliceQuery q;
  q.t0_s = 0;
  q.t1_s = std::int64_t{1} << 40;
  const std::string payload = svc::encode_slice_query(q);
  EXPECT_EQ(must_call(c1, svc::MsgType::kArchiveSlice, 0, payload),
            must_call(c4, svc::MsgType::kArchiveSlice, 0, payload));
}

}  // namespace
}  // namespace s2s
