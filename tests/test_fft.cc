#include "stats/fft.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "stats/rng.h"

namespace s2s::stats {
namespace {

std::vector<std::complex<double>> naive_dft(
    const std::vector<std::complex<double>>& x) {
  const std::size_t n = x.size();
  std::vector<std::complex<double>> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> sum = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = -2.0 * std::numbers::pi *
                           static_cast<double>(k * j) / static_cast<double>(n);
      sum += x[j] * std::complex<double>(std::cos(angle), std::sin(angle));
    }
    out[k] = sum;
  }
  return out;
}

TEST(Fft, MatchesNaiveDft) {
  Rng rng(4);
  std::vector<std::complex<double>> x(64);
  for (auto& v : x) v = {rng.normal(), rng.normal()};
  auto expected = naive_dft(x);
  auto actual = x;
  fft_radix2(actual);
  for (std::size_t k = 0; k < x.size(); ++k) {
    EXPECT_NEAR(actual[k].real(), expected[k].real(), 1e-9);
    EXPECT_NEAR(actual[k].imag(), expected[k].imag(), 1e-9);
  }
}

TEST(Fft, InverseRecoversInput) {
  Rng rng(5);
  std::vector<std::complex<double>> x(128);
  for (auto& v : x) v = {rng.uniform(), rng.uniform()};
  auto y = x;
  fft_radix2(y);
  fft_radix2(y, /*inverse=*/true);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y[i].real(), x[i].real(), 1e-9);
    EXPECT_NEAR(y[i].imag(), x[i].imag(), 1e-9);
  }
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> x(96);
  EXPECT_THROW(fft_radix2(x), std::invalid_argument);
}

TEST(Goertzel, MatchesDftBin) {
  Rng rng(6);
  std::vector<double> x(100);
  for (auto& v : x) v = rng.normal();
  std::vector<std::complex<double>> cx(x.begin(), x.end());
  const auto dft = naive_dft(cx);
  for (int k : {0, 1, 7, 49}) {
    const auto g = goertzel_bin(x, k);
    // The Goertzel recurrence accumulates rounding over N terms; compare
    // at a few-ULP-per-term tolerance.
    EXPECT_NEAR(g.real(), dft[static_cast<std::size_t>(k)].real(), 5e-4);
    EXPECT_NEAR(g.imag(), dft[static_cast<std::size_t>(k)].imag(), 5e-4);
  }
}

TEST(Goertzel, PureToneConcentratesPower) {
  // Exactly 5 cycles over the window.
  const std::size_t n = 200;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(2.0 * std::numbers::pi * 5.0 * static_cast<double>(i) /
                    static_cast<double>(n));
  }
  const double p5 = std::norm(goertzel_bin(x, 5.0));
  const double p6 = std::norm(goertzel_bin(x, 6.0));
  EXPECT_GT(p5, 1000.0 * (p6 + 1e-12));
}

TEST(DiurnalRatio, HighForCleanDailySignal) {
  // 7 days at 15-minute sampling, a clean diurnal bump.
  const double per_day = 96.0;
  std::vector<double> x;
  for (int i = 0; i < 7 * 96; ++i) {
    const double hour = std::fmod(i / 4.0, 24.0);
    x.push_back(50.0 + 20.0 * std::exp(-std::pow(hour - 20.0, 2) / 8.0));
  }
  const auto r = diurnal_power_ratio(x, per_day);
  EXPECT_EQ(r.day_bin, 7);
  // A Gaussian bump is not sinusoidal: a large share of its power sits in
  // the 2/day+ harmonics, so the fundamental carries ~0.6 of the total.
  EXPECT_GT(r.ratio, 0.5);
  EXPECT_TRUE(has_strong_diurnal_pattern(x, per_day));
}

TEST(DiurnalRatio, LowForWhiteNoise) {
  Rng rng(8);
  std::vector<double> x;
  for (int i = 0; i < 7 * 96; ++i) x.push_back(50.0 + rng.normal(0, 3));
  const auto r = diurnal_power_ratio(x, 96.0);
  EXPECT_LT(r.ratio, 0.15);
  EXPECT_FALSE(has_strong_diurnal_pattern(x, 96.0));
}

TEST(DiurnalRatio, LowForSingleSpike) {
  std::vector<double> x(7 * 96, 50.0);
  x[300] = 500.0;  // one isolated outlier
  EXPECT_LT(diurnal_power_ratio(x, 96.0).ratio, 0.1);
}

TEST(DiurnalRatio, ZeroForShortOrEmptySeries) {
  EXPECT_DOUBLE_EQ(diurnal_power_ratio({}, 96.0).ratio, 0.0);
  std::vector<double> one_day(96, 1.0);
  EXPECT_DOUBLE_EQ(diurnal_power_ratio(one_day, 96.0).ratio, 0.0);
}

// The ratio should degrade gracefully as noise drowns the daily signal.
class DiurnalNoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(DiurnalNoiseSweep, MonotoneDetection) {
  const double noise_sigma = GetParam();
  Rng rng(10);
  std::vector<double> x;
  for (int i = 0; i < 7 * 96; ++i) {
    const double hour = std::fmod(i / 4.0, 24.0);
    x.push_back(50.0 + 15.0 * std::exp(-std::pow(hour - 13.0, 2) / 10.0) +
                rng.normal(0, noise_sigma));
  }
  const double ratio = diurnal_power_ratio(x, 96.0).ratio;
  if (noise_sigma <= 2.0) {
    EXPECT_GT(ratio, 0.3);
  } else if (noise_sigma >= 60.0) {
    EXPECT_LT(ratio, 0.3);
  }
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, DiurnalNoiseSweep,
                         ::testing::Values(0.0, 1.0, 2.0, 60.0, 120.0));

// Sampling-rate invariance: the same physical signal sampled at the
// paper's three cadences is detected at all of them.
class DiurnalCadence : public ::testing::TestWithParam<int> {};

TEST_P(DiurnalCadence, DetectsAcrossCadences) {
  const int per_day = GetParam();
  std::vector<double> x;
  for (int i = 0; i < 14 * per_day; ++i) {
    const double hour = 24.0 * (i % per_day) / per_day;
    x.push_back(80.0 + 25.0 * std::exp(-std::pow(hour - 20.0, 2) / 12.0));
  }
  EXPECT_TRUE(has_strong_diurnal_pattern(x, per_day)) << per_day;
}

INSTANTIATE_TEST_SUITE_P(Cadences, DiurnalCadence,
                         ::testing::Values(8, 48, 96));  // 3h, 30min, 15min

TEST(DiurnalRatio, DayBinAtNyquistCountsOnce) {
  // samples_per_day == 2 puts the day bin at Nyquist: 8 samples over 4
  // days -> day_bin = 4 = n/2. The Nyquist bin is self-conjugate, so its
  // power must be counted once, and the k = 5 neighbour lies past Nyquist
  // (it aliases onto bin 3) and must be skipped. The old guard (k < n)
  // admitted k = 5 and doubled Nyquist, inflating the ratio.
  constexpr std::size_t n = 8;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = 2.0 * std::numbers::pi * static_cast<double>(i) / 8.0;
    // Bin 1 (outside the day window), bin 3, and the Nyquist bin 4.
    x[i] = 5.0 * std::cos(1.0 * t) + 2.0 * std::cos(3.0 * t) +
           3.0 * std::cos(4.0 * t);
  }
  const auto r = diurnal_power_ratio(x, 2.0);
  EXPECT_EQ(r.day_bin, 4);
  // Cross-check against the full spectrum: window = {3, 4}, with bin 3
  // conjugate-doubled and Nyquist counted once.
  const auto p = power_spectrum(x);  // mean is already zero
  const double expected =
      (2.0 * p[3] + p[4]) / (2.0 * p[1] + 2.0 * p[3] + p[4]);
  EXPECT_NEAR(r.ratio, expected, 1e-9);
  EXPECT_LT(r.ratio, 1.0);  // bin 1 keeps the ratio off the clamp
}

TEST(PowerSpectrum, ParsevalHolds) {
  Rng rng(12);
  std::vector<double> x(128);
  for (auto& v : x) v = rng.normal();
  const auto power = power_spectrum(x);
  // Sum over all bins (positive freqs doubled except DC/Nyquist).
  double freq_sum = power.front() + power.back();
  for (std::size_t k = 1; k + 1 < power.size(); ++k) freq_sum += 2 * power[k];
  double time_sum = 0;
  for (double v : x) time_sum += v * v;
  EXPECT_NEAR(freq_sum, 128.0 * time_sum, 1e-6 * freq_sum);
}

}  // namespace
}  // namespace s2s::stats
