// Round-trip property tests for the `.s2sb` binary columnar format:
// every record sequence must survive write -> read bit-exact through
// both reader arms (buffered stream and mmap/in-memory), and a binary
// archive must be analysis-equivalent to the text archive of the same
// records — identical DataQualityReports, identical store contents.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/ping_series.h"
#include "core/segment_series.h"
#include "net/timebase.h"
#include "io/binrec.h"
#include "io/crc32c.h"
#include "io/records_io.h"
#include "io/varint.h"
#include "stats/rng.h"

namespace s2s {
namespace {

using probe::PingRecord;
using probe::TracerouteRecord;

// -- bit-exact record equality ----------------------------------------------

void expect_same(const PingRecord& a, const PingRecord& b, std::size_t i) {
  EXPECT_EQ(a.src, b.src) << "ping " << i;
  EXPECT_EQ(a.dst, b.dst) << "ping " << i;
  EXPECT_EQ(a.family, b.family) << "ping " << i;
  EXPECT_EQ(a.time.seconds(), b.time.seconds()) << "ping " << i;
  EXPECT_EQ(a.success, b.success) << "ping " << i;
  // Bitwise, not approximate: the format contract is exactness on the
  // 1e-3 ms grid both formats share.
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.rtt_ms),
            std::bit_cast<std::uint64_t>(b.rtt_ms))
      << "ping " << i << " rtt " << a.rtt_ms << " vs " << b.rtt_ms;
}

void expect_same(const TracerouteRecord& a, const TracerouteRecord& b,
                 std::size_t i) {
  EXPECT_EQ(a.src, b.src) << "trace " << i;
  EXPECT_EQ(a.dst, b.dst) << "trace " << i;
  EXPECT_EQ(a.family, b.family) << "trace " << i;
  EXPECT_EQ(a.time.seconds(), b.time.seconds()) << "trace " << i;
  EXPECT_EQ(a.method, b.method) << "trace " << i;
  EXPECT_EQ(a.complete, b.complete) << "trace " << i;
  EXPECT_EQ(a.src_addr, b.src_addr) << "trace " << i;
  EXPECT_EQ(a.dst_addr, b.dst_addr) << "trace " << i;
  ASSERT_EQ(a.hops.size(), b.hops.size()) << "trace " << i;
  for (std::size_t h = 0; h < a.hops.size(); ++h) {
    EXPECT_EQ(a.hops[h].addr.has_value(), b.hops[h].addr.has_value())
        << "trace " << i << " hop " << h;
    if (a.hops[h].addr && b.hops[h].addr) {
      EXPECT_EQ(*a.hops[h].addr, *b.hops[h].addr)
          << "trace " << i << " hop " << h;
    }
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.hops[h].rtt_ms),
              std::bit_cast<std::uint64_t>(b.hops[h].rtt_ms))
        << "trace " << i << " hop " << h;
  }
}

template <typename Record>
void expect_same_sequence(const std::vector<Record>& want,
                          const std::vector<Record>& got) {
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    expect_same(want[i], got[i], i);
  }
}

// -- seeded generators -------------------------------------------------------

/// An RTT on the 1e-3 ms grid — the exact values "%.3f" text can carry,
/// including the extreme-but-valid boundaries.
double grid_rtt(stats::Rng& rng) {
  switch (rng.below(8)) {
    case 0:
      return 0.0;
    case 1:
      return 0.001;  // smallest nonzero grid point
    case 2:
      return probe::kMaxPlausibleRttMs;  // largest valid value
    case 3:
      return probe::kMaxPlausibleRttMs - 0.001;
    default:
      return static_cast<double>(rng.below(60'000'000)) / 1000.0;
  }
}

std::int64_t boundary_time(stats::Rng& rng) {
  switch (rng.below(6)) {
    case 0:
      return 0;  // epoch floor
    case 1:
      return probe::kMaxTimestampS;  // epoch ceiling
    case 2:
      return probe::kMaxTimestampS - 1;
    default:
      return static_cast<std::int64_t>(rng.below(1000)) * 10'800;
  }
}

net::IPAddr random_addr(stats::Rng& rng) {
  if (rng.chance(0.5)) {
    return net::IPv4Addr(static_cast<std::uint32_t>(rng()));
  }
  return net::IPv6Addr::from_halves(rng(), rng());
}

PingRecord random_ping(stats::Rng& rng) {
  PingRecord r;
  r.src = static_cast<topology::ServerId>(rng.below(40));
  r.dst = static_cast<topology::ServerId>(rng.below(40));
  r.family = rng.chance(0.5) ? net::Family::kIPv4 : net::Family::kIPv6;
  r.time = net::SimTime(boundary_time(rng));
  r.success = rng.chance(0.9);
  r.rtt_ms = grid_rtt(rng);
  return r;
}

TracerouteRecord random_trace(stats::Rng& rng) {
  TracerouteRecord r;
  r.src = static_cast<topology::ServerId>(rng.below(40));
  r.dst = static_cast<topology::ServerId>(rng.below(40));
  r.family = rng.chance(0.5) ? net::Family::kIPv4 : net::Family::kIPv6;
  r.time = net::SimTime(boundary_time(rng));
  r.method = rng.chance(0.5) ? probe::TracerouteMethod::kParis
                             : probe::TracerouteMethod::kClassic;
  const std::size_t hops = rng.below(12);  // 0 hops is a valid record
  for (std::size_t h = 0; h < hops; ++h) {
    probe::Hop hop;
    if (!rng.chance(0.15)) {  // 15% unresponsive ("*")
      hop.addr = random_addr(rng);
      hop.rtt_ms = grid_rtt(rng);
    }
    r.hops.push_back(hop);
  }
  r.src_addr = random_addr(rng);
  r.dst_addr = random_addr(rng);
  r.complete = !r.hops.empty() && r.hops.back().addr.has_value() &&
               rng.chance(0.75);
  if (r.complete) r.hops.back().addr = r.dst_addr;
  return r;
}

struct Generated {
  std::vector<TracerouteRecord> traces;
  std::vector<PingRecord> pings;
  std::string image;  ///< the serialized `.s2sb` bytes
};

/// Generates a mixed record stream and serializes it with per-kind block
/// interleaving and explicit epoch-style flushes.
Generated generate(std::uint64_t seed, std::size_t n,
                   io::BinWriterConfig config = {.block_records = 64}) {
  Generated g;
  stats::Rng rng(seed);
  std::ostringstream out(std::ios::binary);
  io::BinRecordWriter writer(out, config);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.chance(0.5)) {
      g.traces.push_back(random_trace(rng));
      writer.write(g.traces.back());
    } else {
      g.pings.push_back(random_ping(rng));
      writer.write(g.pings.back());
    }
    if (rng.chance(0.02)) writer.flush_block();  // epoch boundary
  }
  writer.finish();
  EXPECT_EQ(writer.written(), n);
  g.image = out.str();
  return g;
}

struct Collected {
  std::vector<TracerouteRecord> traces;
  std::vector<PingRecord> pings;
};

Collected collect_stream(const std::string& image,
                         io::BinReadCounters* counters = nullptr) {
  Collected c;
  std::istringstream in(image, std::ios::binary);
  io::BinRecordReader reader(in);
  EXPECT_TRUE(reader.ok()) << reader.error();
  reader.read_all([&](const TracerouteRecord& r) { c.traces.push_back(r); },
                  [&](const PingRecord& r) { c.pings.push_back(r); });
  if (counters != nullptr) *counters = reader.counters();
  return c;
}

Collected collect_mmap(const std::string& image,
                       io::BinReadCounters* counters = nullptr) {
  Collected c;
  io::BinRecordMmapReader reader(image.data(), image.size());
  EXPECT_TRUE(reader.ok()) << reader.error();
  reader.read_all([&](const TracerouteRecord& r) { c.traces.push_back(r); },
                  [&](const PingRecord& r) { c.pings.push_back(r); });
  if (counters != nullptr) *counters = reader.counters();
  return c;
}

// -- RTT fixed-point encoding ------------------------------------------------

TEST(BinRecRtt, GridValuesRoundTripExactly) {
  stats::Rng rng(17);
  for (int i = 0; i < 20'000; ++i) {
    const std::uint32_t k =
        static_cast<std::uint32_t>(rng.below(60'000'001));
    const double ms = static_cast<double>(k) / 1000.0;
    ASSERT_EQ(io::encode_rtt_thousandths(ms), k) << ms;
    const auto back = io::decode_rtt_thousandths(k);
    ASSERT_TRUE(back.has_value());
    ASSERT_EQ(std::bit_cast<std::uint64_t>(*back),
              std::bit_cast<std::uint64_t>(ms));
  }
}

TEST(BinRecRtt, BoundariesAndInvalids) {
  EXPECT_EQ(io::encode_rtt_thousandths(0.0), 0u);
  EXPECT_EQ(io::encode_rtt_thousandths(probe::kMaxPlausibleRttMs),
            60'000'000u);
  // NaN-adjacent and out-of-range inputs all hit the sentinel.
  EXPECT_EQ(io::encode_rtt_thousandths(std::nan("")),
            io::kInvalidRttThousandths);
  EXPECT_EQ(io::encode_rtt_thousandths(std::numeric_limits<double>::infinity()),
            io::kInvalidRttThousandths);
  EXPECT_EQ(io::encode_rtt_thousandths(-0.001), io::kInvalidRttThousandths);
  EXPECT_EQ(io::encode_rtt_thousandths(
                std::nextafter(probe::kMaxPlausibleRttMs,
                               std::numeric_limits<double>::infinity())),
            io::kInvalidRttThousandths);
  // Negative zero is a valid zero.
  EXPECT_EQ(io::encode_rtt_thousandths(-0.0), 0u);
  EXPECT_FALSE(io::decode_rtt_thousandths(io::kInvalidRttThousandths));
  EXPECT_FALSE(io::decode_rtt_thousandths(60'000'001u));
  EXPECT_TRUE(io::decode_rtt_thousandths(60'000'000u));
}

// -- round-trip properties ---------------------------------------------------

TEST(BinRecRoundTrip, StreamArmIsBitExact) {
  const auto g = generate(101, 3000);
  io::BinReadCounters counters;
  const auto got = collect_stream(g.image, &counters);
  expect_same_sequence(g.traces, got.traces);
  expect_same_sequence(g.pings, got.pings);
  EXPECT_EQ(counters.corrupt_blocks, 0u);
  EXPECT_EQ(counters.records_rejected, 0u);
  EXPECT_EQ(counters.records_read, g.traces.size() + g.pings.size());
}

TEST(BinRecRoundTrip, MmapArmIsBitExact) {
  const auto g = generate(202, 3000);
  io::BinReadCounters counters;
  const auto got = collect_mmap(g.image, &counters);
  expect_same_sequence(g.traces, got.traces);
  expect_same_sequence(g.pings, got.pings);
  EXPECT_EQ(counters.corrupt_blocks, 0u);
}

TEST(BinRecRoundTrip, ArmsAgreeOnEveryBlockSize) {
  for (const std::size_t block_records : {1ul, 7ul, 64ul, 4096ul}) {
    const auto g =
        generate(303 + block_records, 500,
                 io::BinWriterConfig{.block_records = block_records});
    const auto s = collect_stream(g.image);
    const auto m = collect_mmap(g.image);
    expect_same_sequence(g.traces, s.traces);
    expect_same_sequence(g.pings, s.pings);
    expect_same_sequence(g.traces, m.traces);
    expect_same_sequence(g.pings, m.pings);
  }
}

TEST(BinRecRoundTrip, FooterlessArchiveFallsBackToSequentialWalk) {
  const auto g = generate(404, 800,
                          io::BinWriterConfig{.block_records = 32,
                                              .write_header = true,
                                              .write_footer = false});
  io::BinRecordMmapReader footerless(g.image.data(), g.image.size());
  EXPECT_TRUE(footerless.ok());
  EXPECT_FALSE(footerless.has_index());
  const auto s = collect_stream(g.image);
  const auto m = collect_mmap(g.image);
  expect_same_sequence(g.traces, s.traces);
  expect_same_sequence(g.pings, s.pings);
  expect_same_sequence(g.traces, m.traces);
  expect_same_sequence(g.pings, m.pings);
}

TEST(BinRecRoundTrip, EmptyArchive) {
  std::ostringstream out(std::ios::binary);
  {
    io::BinRecordWriter writer(out);
    writer.flush_block();  // flushing nothing emits nothing
    writer.finish();
    EXPECT_EQ(writer.blocks_written(), 0u);
  }
  const std::string image = out.str();
  EXPECT_EQ(image.size(),
            io::kBinFileHeaderBytes + 4 + io::kBinFooterTailBytes);
  const auto s = collect_stream(image);
  const auto m = collect_mmap(image);
  EXPECT_TRUE(s.traces.empty() && s.pings.empty());
  EXPECT_TRUE(m.traces.empty() && m.pings.empty());
}

TEST(BinRecRoundTrip, CraftedEmptyBlockIsValid) {
  // A zero-record block is not something the writer emits, but the
  // format allows it; readers must accept and count it.
  std::string image;
  {
    std::ostringstream out(std::ios::binary);
    io::BinRecordWriter writer(out);
    writer.finish();
    image = out.str().substr(0, io::kBinFileHeaderBytes);  // header only
  }
  std::string header;
  io::put_u32le(header, io::kBinBlockMagic);
  header.push_back(1);  // kind: traceroute
  header.push_back(0);
  io::put_u16le(header, 0);  // record_count = 0
  io::put_u32le(header, 0);  // payload_bytes = 0
  const std::uint32_t crc = io::crc32c(
      reinterpret_cast<const unsigned char*>(header.data()) + 4, 8);
  io::put_u32le(header, crc);
  image += header;

  io::BinReadCounters sc, mc;
  const auto s = collect_stream(image, &sc);
  const auto m = collect_mmap(image, &mc);
  EXPECT_TRUE(s.traces.empty() && s.pings.empty());
  EXPECT_TRUE(m.traces.empty() && m.pings.empty());
  EXPECT_EQ(sc.blocks_read, 1u);
  EXPECT_EQ(mc.blocks_read, 1u);
  EXPECT_EQ(sc.corrupt_blocks, 0u);
  EXPECT_EQ(mc.corrupt_blocks, 0u);
}

TEST(BinRecRoundTrip, NotAnArchive) {
  const std::string text = "T\tnot\tbinary\n";
  std::istringstream in(text, std::ios::binary);
  io::BinRecordReader reader(in);
  EXPECT_FALSE(reader.ok());
  io::BinRecordMmapReader mm(text.data(), text.size());
  EXPECT_FALSE(mm.ok());
  std::istringstream empty(std::string(), std::ios::binary);
  io::BinRecordReader empty_reader(empty);
  EXPECT_FALSE(empty_reader.ok());
}

// -- footer index and O(1) epoch seek ---------------------------------------

TEST(BinRecFooter, TimeRangeSeekDecodesOnlyCoveringBlocks) {
  // One block per epoch: 10 epochs, 3h grid, 20 pings each.
  std::ostringstream out(std::ios::binary);
  io::BinRecordWriter writer(out);
  std::vector<PingRecord> all;
  stats::Rng rng(7);
  for (std::int64_t epoch = 0; epoch < 10; ++epoch) {
    for (int i = 0; i < 20; ++i) {
      PingRecord r = random_ping(rng);
      r.time = net::SimTime(epoch * 10'800 + i);
      all.push_back(r);
      writer.write(r);
    }
    writer.flush_block();
  }
  writer.finish();
  const std::string image = out.str();

  io::BinRecordMmapReader reader(image.data(), image.size());
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE(reader.has_index());
  EXPECT_EQ(reader.index().size(), 10u);

  std::vector<PingRecord> got;
  const bool seek_ok = reader.read_time_range(
      3 * 10'800, 5 * 10'800 + 19, [](const TracerouteRecord&) {},
      [&](const PingRecord& r) { got.push_back(r); });
  ASSERT_TRUE(seek_ok);
  // Exactly epochs 3..5 decode: 60 records, no others touched.
  ASSERT_EQ(got.size(), 60u);
  EXPECT_EQ(reader.blocks_read(), 3u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    expect_same(all[60 + i], got[i], i);
  }
}

TEST(BinRecFooter, IndexCarriesBlockTimeSpans) {
  const auto g = generate(505, 400);
  io::BinRecordMmapReader reader(g.image.data(), g.image.size());
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE(reader.has_index());
  std::size_t indexed_records = 0;
  for (const auto& e : reader.index()) {
    EXPECT_LE(e.first_time_s, e.last_time_s);
    indexed_records += e.record_count;
  }
  EXPECT_EQ(indexed_records, g.traces.size() + g.pings.size());
}

// -- checkpoint/resume byte identity ----------------------------------------

TEST(BinRecResume, AppendedArchiveIsByteIdenticalToUninterrupted) {
  // Epoch-aligned blocks make each block a pure function of its records,
  // so interrupt-at-boundary + append == uninterrupted write.
  stats::Rng rng(606);
  std::vector<PingRecord> epochs[6];
  for (int e = 0; e < 6; ++e) {
    for (int i = 0; i < 50; ++i) {
      PingRecord r = random_ping(rng);
      r.time = net::SimTime(e * 10'800 + i);
      epochs[e].push_back(r);
    }
  }
  const io::BinWriterConfig footerless{
      .block_records = 1024, .write_header = true, .write_footer = false};

  std::ostringstream full(std::ios::binary);
  {
    io::BinRecordWriter writer(full, footerless);
    for (const auto& epoch : epochs) {
      for (const auto& r : epoch) writer.write(r);
      writer.flush_block();
    }
    writer.finish();
  }

  std::ostringstream interrupted(std::ios::binary);
  {
    io::BinRecordWriter writer(interrupted, footerless);
    for (int e = 0; e < 3; ++e) {
      for (const auto& r : epochs[e]) writer.write(r);
      writer.flush_block();
    }
    writer.finish();
  }
  {
    const io::BinWriterConfig append{.block_records = 1024,
                                     .write_header = false,
                                     .write_footer = false};
    io::BinRecordWriter writer(interrupted, append);
    for (int e = 3; e < 6; ++e) {
      for (const auto& r : epochs[e]) writer.write(r);
      writer.flush_block();
    }
    writer.finish();
  }
  EXPECT_EQ(interrupted.str(), full.str());
}

// -- format interchangeability at the ingest seam ----------------------------

TEST(BinRecInterchange, AutoIngestMatchesFormatSniff) {
  const auto g = generate(707, 600);
  std::string text;
  for (const auto& r : g.traces) text += io::to_line(r) + '\n';
  for (const auto& r : g.pings) text += io::to_line(r) + '\n';

  std::istringstream bin_in(g.image, std::ios::binary);
  EXPECT_TRUE(io::is_binary_record_stream(bin_in));
  std::istringstream text_in(text, std::ios::binary);
  EXPECT_FALSE(io::is_binary_record_stream(text_in));

  Collected from_bin;
  const auto bin_result = io::read_records_auto(
      bin_in, [&](const TracerouteRecord& r) { from_bin.traces.push_back(r); },
      [&](const PingRecord& r) { from_bin.pings.push_back(r); });
  EXPECT_TRUE(bin_result.binary);
  EXPECT_TRUE(bin_result.ok);
  EXPECT_EQ(bin_result.records, g.traces.size() + g.pings.size());

  Collected from_text;
  const auto text_result = io::read_records_auto(
      text_in,
      [&](const TracerouteRecord& r) { from_text.traces.push_back(r); },
      [&](const PingRecord& r) { from_text.pings.push_back(r); });
  EXPECT_FALSE(text_result.binary);
  EXPECT_EQ(text_result.malformed_lines, 0u);

  expect_same_sequence(g.traces, from_bin.traces);
  expect_same_sequence(g.pings, from_bin.pings);
  expect_same_sequence(g.traces, from_text.traces);
  expect_same_sequence(g.pings, from_text.pings);
}

TEST(BinRecInterchange, AutoIngestEdgeCases) {
  const auto ingest = [](const std::string& bytes, Collected& out) {
    std::istringstream in(bytes, std::ios::binary);
    return io::read_records_auto(
        in, [&](const TracerouteRecord& r) { out.traces.push_back(r); },
        [&](const PingRecord& r) { out.pings.push_back(r); });
  };

  // Empty file: not binary, zero records, zero errors, still ok.
  {
    Collected got;
    const auto r = ingest("", got);
    EXPECT_TRUE(r.ok);
    EXPECT_FALSE(r.binary);
    EXPECT_EQ(r.records, 0u);
    EXPECT_EQ(r.malformed_lines, 0u);
  }

  // Shorter than the magic itself: a 2-byte prefix of "S2SB" must fall to
  // the text arm (one malformed line), not be claimed as binary.
  {
    Collected got;
    const auto r = ingest("S2", got);
    EXPECT_TRUE(r.ok);
    EXPECT_FALSE(r.binary);
    EXPECT_EQ(r.records, 0u);
    EXPECT_EQ(r.malformed_lines, 1u);
  }

  // A text file that merely *begins* with the binary magic bytes: the
  // version field decodes from printable text as a value far above 255,
  // so the sniff routes it to the text arm and the remaining valid line
  // still parses.
  {
    Collected got;
    const auto r =
        ingest("S2SBhost\tsome\ttext\tcolumns\nP\t1\t2\t4\t100\t1\t12.500\n",
               got);
    EXPECT_TRUE(r.ok);
    EXPECT_FALSE(r.binary);
    EXPECT_EQ(r.malformed_lines, 1u);
    ASSERT_EQ(got.pings.size(), 1u);
    EXPECT_EQ(got.pings[0].src, 1u);
    EXPECT_EQ(got.pings[0].rtt_ms, 12.5);
  }

  // Exactly the magic and nothing else: claimed binary only if a version
  // could follow; with no version bytes it is text (one malformed line).
  {
    Collected got;
    const auto r = ingest("S2SB", got);
    EXPECT_TRUE(r.ok);
    EXPECT_FALSE(r.binary);
    EXPECT_EQ(r.malformed_lines, 1u);
  }

  // Magic plus a plausible version but nothing more: the sniff says
  // binary, and the reader reports a truncated header instead of records.
  {
    Collected got;
    std::string head("S2SB\x01\x00", 6);
    const auto r = ingest(head, got);
    EXPECT_TRUE(r.binary);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(got.pings.size() + got.traces.size(), 0u);
  }
}

TEST(BinRecInterchange, StoresProduceIdenticalQualityReportsFromEitherFormat) {
  // The acceptance contract: an analysis fed from text or binary sees the
  // same records, so every store tallies the same DataQualityReport.
  const auto g = generate(808, 1200);
  std::string text;
  for (const auto& r : g.traces) text += io::to_line(r) + '\n';
  for (const auto& r : g.pings) text += io::to_line(r) + '\n';

  // Slot-addressed stores construct without a topology; their quality
  // accounting (duplicates, off-grid timestamps, invalid samples) is the
  // same seam TimelineStore uses.
  core::SegmentSeriesStore text_seg(0.0, net::kThreeHours, 1000);
  core::SegmentSeriesStore bin_seg(0.0, net::kThreeHours, 1000);
  core::PingSeriesStore text_ps(0.0, net::kThreeHours, 1000);
  core::PingSeriesStore bin_ps(0.0, net::kThreeHours, 1000);

  std::istringstream text_in(text, std::ios::binary);
  io::RecordReader text_reader(text_in);
  text_reader.read_all([&](const TracerouteRecord& r) { text_seg.add(r); },
                       [&](const PingRecord& r) { text_ps.add(r); });
  EXPECT_EQ(text_reader.errors(), 0u);

  std::istringstream bin_in(g.image, std::ios::binary);
  io::BinRecordReader bin_reader(bin_in);
  ASSERT_TRUE(bin_reader.ok());
  bin_reader.read_all([&](const TracerouteRecord& r) { bin_seg.add(r); },
                      [&](const PingRecord& r) { bin_ps.add(r); });

  EXPECT_EQ(text_seg.quality().as_map(), bin_seg.quality().as_map());
  EXPECT_EQ(text_ps.quality().as_map(), bin_ps.quality().as_map());
}

TEST(BinRecInterchange, FileIngestUsesTheMmapArm) {
  const auto g = generate(909, 300);
  const std::string dir = ::testing::TempDir();
  const std::string bin_path = dir + "/binrec_interchange.s2sb";
  const std::string text_path = dir + "/binrec_interchange.tsv";
  {
    std::ofstream out(bin_path, std::ios::binary | std::ios::trunc);
    out << g.image;
  }
  {
    std::ofstream out(text_path, std::ios::binary | std::ios::trunc);
    for (const auto& r : g.traces) out << io::to_line(r) << '\n';
    for (const auto& r : g.pings) out << io::to_line(r) << '\n';
  }
  EXPECT_TRUE(io::is_binary_record_file(bin_path));
  EXPECT_FALSE(io::is_binary_record_file(text_path));

  Collected from_bin, from_text;
  const auto bin_result = io::ingest_record_file(
      bin_path, [&](const TracerouteRecord& r) { from_bin.traces.push_back(r); },
      [&](const PingRecord& r) { from_bin.pings.push_back(r); });
  EXPECT_TRUE(bin_result.binary);
  EXPECT_TRUE(bin_result.used_mmap);
  const auto text_result = io::ingest_record_file(
      text_path,
      [&](const TracerouteRecord& r) { from_text.traces.push_back(r); },
      [&](const PingRecord& r) { from_text.pings.push_back(r); });
  EXPECT_FALSE(text_result.binary);

  expect_same_sequence(g.traces, from_bin.traces);
  expect_same_sequence(g.pings, from_bin.pings);
  expect_same_sequence(g.traces, from_text.traces);
  expect_same_sequence(g.pings, from_text.pings);
}

}  // namespace
}  // namespace s2s
