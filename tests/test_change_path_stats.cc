#include <gtest/gtest.h>

#include "core/change_detect.h"
#include "core/path_stats.h"

namespace s2s::core {
namespace {

using net::Asn;
using net::AsPath;

TEST(EditDistance, PaperExample) {
  // Paper Section 4.1: p1 = a b c d, p2 = a b d => distance 1.
  const AsPath p1{Asn(1), Asn(2), Asn(3), Asn(4)};
  const AsPath p2{Asn(1), Asn(2), Asn(4)};
  EXPECT_EQ(edit_distance(p1, p2), 1);
  EXPECT_EQ(edit_distance(p2, p1), 1);
}

TEST(EditDistance, BasicCases) {
  const AsPath a{Asn(1), Asn(2), Asn(3)};
  EXPECT_EQ(edit_distance(a, a), 0);
  EXPECT_EQ(edit_distance(a, {}), 3);
  EXPECT_EQ(edit_distance({}, a), 3);
  EXPECT_EQ(edit_distance(a, AsPath{Asn(1), Asn(9), Asn(3)}), 1);  // subst
  EXPECT_EQ(edit_distance(a, AsPath{Asn(9), Asn(8), Asn(7)}), 3);
  EXPECT_EQ(edit_distance(a, AsPath{Asn(3), Asn(2), Asn(1)}), 2);
}

TEST(EditDistance, TriangleInequalitySpotCheck) {
  const AsPath x{Asn(1), Asn(2)};
  const AsPath y{Asn(1), Asn(3), Asn(2)};
  const AsPath z{Asn(4), Asn(3), Asn(2)};
  EXPECT_LE(edit_distance(x, z),
            edit_distance(x, y) + edit_distance(y, z));
}

// Builds a timeline from a path-id sequence (all RTTs 100 ms, each epoch
// consecutive).
TraceTimeline make_timeline(PathInterner& interner,
                            const std::vector<AsPath>& paths,
                            const std::vector<int>& sequence,
                            const std::vector<double>& rtts = {}) {
  TraceTimeline timeline;
  for (const AsPath& p : paths) {
    timeline.local_paths.push_back(interner.intern(p));
  }
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    Observation o;
    o.epoch = static_cast<std::uint16_t>(i);
    o.path = static_cast<std::uint16_t>(sequence[i]);
    const double rtt = rtts.empty() ? 100.0 : rtts[i];
    o.rtt_tenths = static_cast<std::uint16_t>(rtt * 10.0);
    timeline.obs.push_back(o);
  }
  return timeline;
}

TEST(DetectChanges, FindsTransitionsWithDistances) {
  PathInterner interner;
  const AsPath p0{Asn(1), Asn(2), Asn(3)};
  const AsPath p1{Asn(1), Asn(5), Asn(3)};
  const auto timeline = make_timeline(interner, {p0, p1}, {0, 0, 1, 1, 0});
  const auto events = detect_changes(timeline, interner);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].epoch, 2);
  EXPECT_EQ(events[0].distance, 1);
  EXPECT_EQ(events[1].epoch, 4);
  EXPECT_EQ(count_changes(timeline), 2u);
}

TEST(DetectChanges, NoChangesOnStableTimeline) {
  PathInterner interner;
  const auto timeline =
      make_timeline(interner, {AsPath{Asn(1)}}, {0, 0, 0, 0});
  EXPECT_TRUE(detect_changes(timeline, interner).empty());
  EXPECT_EQ(count_changes(timeline), 0u);
}

TEST(AnalyzeTimeline, BucketsLifetimesAndPrevalence) {
  PathInterner interner;
  const AsPath p0{Asn(1), Asn(2)};
  const AsPath p1{Asn(1), Asn(3), Asn(2)};
  // 6 observations on p0 at 100ms, 2 on p1 at 150ms; 3-hour interval.
  const auto timeline = make_timeline(
      interner, {p0, p1}, {0, 0, 0, 1, 1, 0, 0, 0},
      {100, 100, 100, 150, 150, 100, 100, 100});
  const auto analysis = analyze_timeline(timeline, 3.0);
  ASSERT_EQ(analysis.buckets.size(), 2u);
  EXPECT_EQ(analysis.observations, 8u);
  EXPECT_EQ(analysis.changes, 2u);
  const auto& b0 = analysis.buckets[0];
  EXPECT_EQ(b0.count, 6u);
  EXPECT_DOUBLE_EQ(b0.lifetime_hours, 18.0);
  EXPECT_DOUBLE_EQ(b0.prevalence, 0.75);
  EXPECT_NEAR(b0.p10, 100.0, 1e-9);
  EXPECT_EQ(analysis.most_prevalent(), 0u);
  EXPECT_EQ(analysis.best(BestPathCriterion::kP10), 0u);
  // p1's 10th percentile is 150 -> suboptimal by 50 ms.
  EXPECT_NEAR(analysis.buckets[1].p10 - b0.p10, 50.0, 1e-9);
}

TEST(AnalyzeTimeline, BestByDifferentCriteriaCanDiffer) {
  PathInterner interner;
  const AsPath p0{Asn(1)};
  const AsPath p1{Asn(2)};
  // p0: low baseline, huge spikes. p1: higher baseline, steady.
  std::vector<int> seq;
  std::vector<double> rtts;
  for (int i = 0; i < 10; ++i) {
    seq.push_back(0);
    rtts.push_back(i < 8 ? 50.0 : 500.0);
  }
  for (int i = 0; i < 10; ++i) {
    seq.push_back(1);
    rtts.push_back(80.0);
  }
  const auto timeline = make_timeline(interner, {p0, p1}, seq, rtts);
  const auto analysis = analyze_timeline(timeline, 3.0);
  EXPECT_EQ(analysis.best(BestPathCriterion::kP10), 0u);
  EXPECT_EQ(analysis.best(BestPathCriterion::kP90), 1u);
  EXPECT_EQ(analysis.best(BestPathCriterion::kStddev), 1u);
}

TEST(AnalyzeTimeline, EmptyTimeline) {
  const TraceTimeline timeline;
  const auto analysis = analyze_timeline(timeline, 3.0);
  EXPECT_TRUE(analysis.buckets.empty());
  EXPECT_EQ(analysis.observations, 0u);
}

TEST(PathInterner, DeduplicatesAndRetrieves) {
  PathInterner interner;
  const AsPath p{Asn(1), Asn(2)};
  const auto id1 = interner.intern(p);
  const auto id2 = interner.intern(p);
  const auto id3 = interner.intern(AsPath{Asn(2), Asn(1)});
  EXPECT_EQ(id1, id2);
  EXPECT_NE(id1, id3);
  EXPECT_EQ(interner.path(id1), p);
  EXPECT_EQ(interner.size(), 2u);
}

}  // namespace
}  // namespace s2s::core
