#include <gtest/gtest.h>

#include "core/dualstack.h"
#include "core/inflation.h"
#include "core/routing_study.h"
#include "stats/binned_ecdf.h"

namespace s2s::core {
namespace {

using net::Asn;
using net::AsPath;

TEST(BinnedEcdf, BasicQueries) {
  stats::BinnedEcdf e(-100.0, 100.0, 200);
  for (int i = -50; i <= 50; ++i) e.add(i);
  EXPECT_EQ(e.total(), 101u);
  EXPECT_NEAR(e.at(0.0), 0.5, 0.02);
  EXPECT_NEAR(e.at(50.0), 1.0, 0.01);
  EXPECT_NEAR(e.tail_at_least(40.0), 11.0 / 101.0, 0.02);
  EXPECT_NEAR(e.quantile(0.5), 0.0, 2.0);
  // Outliers clamp, not crash.
  e.add(1e9);
  e.add(-1e9);
  EXPECT_EQ(e.total(), 103u);
}

TEST(BinnedEcdf, RejectsBadConstruction) {
  EXPECT_THROW(stats::BinnedEcdf(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(stats::BinnedEcdf(0.0, 1.0, 0), std::invalid_argument);
}

// Hand-rolled store exercising the study aggregators end to end.
class StudyFixture : public ::testing::Test {
 protected:
  StudyFixture() : store_(topo_, rib_, {0.0, net::kThreeHours}) {
    // Minimal two-server topology metadata (cities for inflation).
    topo_.cities.push_back({"New York", "US", "NA", {40.71, -74.01}, -5});
    topo_.cities.push_back({"Tokyo", "JP", "AS", {35.68, 139.65}, 9});
    topology::AsNode as1, as2;
    as1.asn = Asn(100);
    as2.asn = Asn(200);
    topo_.ases = {as1, as2};
    topology::Server s0, s1;
    s0.as_id = 0;
    s0.city = 0;
    s1.as_id = 1;
    s1.city = 1;
    topo_.servers = {s0, s1};
    rib_.insert(net::Prefix4(net::IPv4Addr(10, 100, 0, 0), 16), Asn(100));
    rib_.insert(net::Prefix4(net::IPv4Addr(10, 200, 0, 0), 16), Asn(200));
  }

  // Feed a complete traceroute 0 -> 1 with the given RTT at `epoch`.
  void feed(net::Family fam, int epoch, double rtt, int mid_as = 0) {
    probe::TracerouteRecord rec;
    rec.src = 0;
    rec.dst = 1;
    rec.family = fam;
    rec.complete = true;
    rec.time = net::SimTime(static_cast<std::int64_t>(epoch) *
                            net::kThreeHours);
    auto hop_addr = [&](int second, int host) {
      return net::IPAddr(net::IPv4Addr(10, static_cast<std::uint8_t>(second),
                                       0, static_cast<std::uint8_t>(host)));
    };
    rec.hops.push_back({hop_addr(100, 1), rtt / 3});
    if (mid_as != 0) {
      rec.hops.push_back({hop_addr(mid_as, 1), rtt / 2});
    }
    rec.hops.push_back({hop_addr(200, 1), rtt});
    store_.add(rec);
  }

  topology::Topology topo_;
  bgp::Rib rib_;
  TimelineStore store_;
};

TEST_F(StudyFixture, DualStackMatchesEpochsAndPaths) {
  rib_.insert(net::Prefix4(net::IPv4Addr(10, 50, 0, 0), 16), Asn(50));
  for (int e = 0; e < 20; ++e) {
    feed(net::Family::kIPv4, e, 100.0);
    // IPv6 10 ms faster, same AS path for the first 10 epochs, then a
    // detour via AS50.
    feed(net::Family::kIPv6, e, 90.0, e < 10 ? 0 : 50);
  }
  const auto study = run_dualstack_study(store_);
  EXPECT_EQ(study.pairs_matched, 1u);
  EXPECT_EQ(study.samples_matched, 20u);
  EXPECT_EQ(study.samples_same_path, 10u);
  // All diffs are +10 ms (v4 slower).
  EXPECT_NEAR(study.diff_all.quantile(0.5), 10.0, 0.5);
  ASSERT_EQ(study.pair_median_diff.size(), 1u);
  EXPECT_NEAR(study.pair_median_diff[0], 10.0, 0.5);
}

TEST_F(StudyFixture, InflationUsesGroundTruthGeography) {
  for (int e = 0; e < 60; ++e) feed(net::Family::kIPv4, e, 300.0);
  InflationConfig cfg;
  cfg.min_observations = 10;
  const auto study = run_inflation_study(store_, topo_, cfg);
  ASSERT_EQ(study.all.v4.size(), 1u);
  // NYC-Tokyo cRTT ~ 72ms; inflation = 300 / cRTT.
  const double crtt = net::c_rtt_ms(topo_.cities[0].location,
                                    topo_.cities[1].location);
  EXPECT_NEAR(study.all.v4[0], 300.0 / crtt, 0.05);
  // Not US-US; on the paper's transcontinental list (US-JP).
  EXPECT_TRUE(study.us_us.v4.empty());
  ASSERT_EQ(study.transcontinental.v4.size(), 1u);
}

TEST_F(StudyFixture, RoutingStudyCountsPathsAndChanges) {
  rib_.insert(net::Prefix4(net::IPv4Addr(10, 50, 0, 0), 16), Asn(50));
  for (int e = 0; e < 50; ++e) {
    feed(net::Family::kIPv4, e, e >= 20 && e < 30 ? 160.0 : 100.0,
         e >= 20 && e < 30 ? 50 : 0);
  }
  RoutingStudyConfig cfg;
  cfg.min_observations = 10;
  const auto study = run_routing_study(store_, cfg);
  ASSERT_EQ(study.v4.timelines, 1u);
  EXPECT_EQ(study.v4.unique_paths[0], 2.0);
  EXPECT_EQ(study.v4.changes[0], 2.0);
  EXPECT_NEAR(study.v4.popular_prevalence[0], 0.8, 1e-9);
  // One sub-optimal bucket with ~60 ms penalty, prevalence 0.2.
  ASSERT_EQ(study.v4.delta_p10_ms.size(), 1u);
  EXPECT_NEAR(study.v4.delta_p10_ms[0], 60.0, 2.0);
  EXPECT_NEAR(study.v4.lifetime_hours_p10[0], 30.0, 1e-9);  // 10 obs x 3 h
  // Fig 6 sums: >=20 and >=50 thresholds capture it, >=100 does not.
  ASSERT_EQ(study.v4.suboptimal_prevalence.size(), 1u);
  EXPECT_NEAR(study.v4.suboptimal_prevalence[0][0], 0.2, 1e-9);
  EXPECT_NEAR(study.v4.suboptimal_prevalence[0][1], 0.2, 1e-9);
  EXPECT_NEAR(study.v4.suboptimal_prevalence[0][2], 0.0, 1e-9);
}

TEST_F(StudyFixture, Table1Accounting) {
  feed(net::Family::kIPv4, 0, 100.0);
  probe::TracerouteRecord incomplete;
  incomplete.src = 0;
  incomplete.dst = 1;
  incomplete.family = net::Family::kIPv4;
  incomplete.complete = false;
  incomplete.time = net::SimTime(0);
  incomplete.hops = {{std::nullopt, 0.0}};
  store_.add(incomplete);
  const auto& t = store_.table1();
  EXPECT_EQ(t.v4.collected, 2u);
  EXPECT_EQ(t.v4.complete, 1u);
  EXPECT_EQ(t.v4.complete_as, 1u);
  EXPECT_EQ(t.v4.missing_ip, 0u);
}

}  // namespace
}  // namespace s2s::core
