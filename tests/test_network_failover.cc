// Failover consistency: whatever route Network::resolve returns, it must
// be (a) policy-valid, (b) entirely up at the query time, and (c) equal to
// the no-failure primary whenever that primary is fully up. This pins the
// candidate-table + exact-fallback machinery against the outage schedule.
#include <gtest/gtest.h>

#include "routing/candidates.h"
#include "simnet/network.h"

namespace s2s::simnet {
namespace {

using topology::AdjacencyId;
using topology::ServerId;

class FailoverFixture : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    NetworkConfig cfg;
    cfg.topology.seed = GetParam();
    cfg.topology.tier1_count = 5;
    cfg.topology.transit_count = 25;
    cfg.topology.stub_count = 80;
    cfg.topology.server_count = 24;
    // Dense outages so failover paths actually exercise.
    cfg.dynamics.mean_outages_per_adjacency = 6.0;
    net_ = std::make_unique<Network>(cfg);
    std::vector<ServerId> servers;
    for (ServerId s = 0; s < net_->topo().servers.size(); ++s) {
      servers.push_back(s);
    }
    net_->prepare_full_mesh(servers);
  }

  std::unique_ptr<Network> net_;
};

TEST_P(FailoverFixture, ResolvedRoutesNeverCrossDownAdjacencies) {
  const auto& topo = net_->topo();
  std::size_t resolved = 0, failovers = 0;
  for (int day = 0; day < 485; day += 23) {
    const net::SimTime t = net::SimTime::from_days(day);
    for (ServerId a = 0; a < 8; ++a) {
      for (ServerId b = 8; b < 16; ++b) {
        for (const auto fam : {net::Family::kIPv4, net::Family::kIPv6}) {
          if (fam == net::Family::kIPv6 &&
              (!topo.servers[a].dual_stack() ||
               !topo.servers[b].dual_stack())) {
            continue;  // the v6 plane is only prepared for dual-stack pairs
          }
          const auto r = net_->resolve(a, b, fam, t);
          if (!r) continue;
          ++resolved;
          failovers += r->from_fallback;
          for (std::size_t i = 0; i + 1 < r->as_path.size(); ++i) {
            const auto adj =
                topo.find_adjacency(r->as_path[i], r->as_path[i + 1]);
            ASSERT_TRUE(adj.has_value());
            EXPECT_FALSE(net_->outages().is_down(*adj, fam, t))
                << "path crosses a down adjacency at day " << day;
            if (fam == net::Family::kIPv6) {
              EXPECT_TRUE(topo.adjacencies[*adj].ipv6);
            }
          }
        }
      }
    }
  }
  EXPECT_GT(resolved, 1000u);
}

TEST_P(FailoverFixture, PrimaryUsedWheneverFullyUp) {
  const auto& topo = net_->topo();
  const routing::ValleyFreeRouter router(topo);
  std::size_t checked = 0;
  for (int day = 1; day < 485 && checked < 400; day += 37) {
    const net::SimTime t = net::SimTime::from_days(day);
    for (ServerId a = 0; a < 6; ++a) {
      for (ServerId b = 6; b < 12; ++b) {
        const auto base =
            router.compute(topo.servers[b].as_id, net::Family::kIPv4);
        const auto primary = router.extract(base, topo.servers[a].as_id);
        if (!primary) continue;
        bool fully_up = true;
        for (std::size_t i = 0; i + 1 < primary->size(); ++i) {
          const auto adj =
              topo.find_adjacency((*primary)[i], (*primary)[i + 1]);
          fully_up = fully_up &&
                     !net_->outages().is_down(*adj, net::Family::kIPv4, t);
        }
        if (!fully_up) continue;
        const auto r = net_->resolve(a, b, net::Family::kIPv4, t);
        ASSERT_TRUE(r.has_value());
        EXPECT_EQ(r->as_path, *primary);
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 100u);
}

TEST_P(FailoverFixture, OutagesChangeObservedPathsOverTime) {
  // Over 485 days with dense outages, at least some pair must see more
  // than one AS path (otherwise the dynamics are inert).
  std::size_t pairs_with_changes = 0;
  for (ServerId a = 0; a < 6; ++a) {
    for (ServerId b = 6; b < 12; ++b) {
      std::vector<std::vector<topology::AsId>> seen;
      for (int day = 0; day < 485; day += 5) {
        const auto r = net_->resolve(a, b, net::Family::kIPv4,
                                     net::SimTime::from_days(day));
        if (!r) continue;
        if (std::find(seen.begin(), seen.end(), r->as_path) == seen.end()) {
          seen.push_back(r->as_path);
        }
      }
      pairs_with_changes += seen.size() > 1;
    }
  }
  EXPECT_GT(pairs_with_changes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailoverFixture, ::testing::Values(51, 52));

}  // namespace
}  // namespace s2s::simnet
