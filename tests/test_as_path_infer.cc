#include "core/as_path_infer.h"

#include <gtest/gtest.h>

namespace s2s::core {
namespace {

using net::Asn;
using net::IPAddr;
using net::IPv4Addr;

class InferFixture : public ::testing::Test {
 protected:
  InferFixture() {
    // AS 100 owns 10.100/16, AS 200 owns 10.200/16, AS 300 owns 10.44/16.
    rib_.insert(net::Prefix4(IPv4Addr(10, 100, 0, 0), 16), Asn(100));
    rib_.insert(net::Prefix4(IPv4Addr(10, 200, 0, 0), 16), Asn(200));
    rib_.insert(net::Prefix4(IPv4Addr(10, 44, 0, 0), 16), Asn(300));
  }

  static probe::Hop hop(std::optional<IPAddr> addr) {
    return {addr, 1.0};
  }
  static IPAddr a(int second, int host) {
    return IPAddr(IPv4Addr(10, static_cast<std::uint8_t>(second), 0,
                           static_cast<std::uint8_t>(host)));
  }

  probe::TracerouteRecord record(std::vector<probe::Hop> hops) {
    probe::TracerouteRecord rec;
    rec.complete = true;
    rec.hops = std::move(hops);
    return rec;
  }

  bgp::Rib rib_;
};

TEST_F(InferFixture, CollapsesConsecutiveDuplicates) {
  AsPathInferrer infer(rib_);
  const auto rec = record({hop(a(100, 1)), hop(a(100, 2)), hop(a(200, 1)),
                           hop(a(200, 2))});
  const auto out = infer.infer(rec, Asn(100));
  EXPECT_EQ(out.as_path, (net::AsPath{Asn(100), Asn(200)}));
  EXPECT_EQ(out.quality, TraceQuality::kCompleteAsLevel);
  EXPECT_FALSE(out.has_as_loop);
  EXPECT_FALSE(out.imputed);
}

TEST_F(InferFixture, ImputesGapInsideOneAs) {
  AsPathInferrer infer(rib_);
  const auto rec = record(
      {hop(a(100, 1)), hop(std::nullopt), hop(a(100, 2)), hop(a(200, 1))});
  const auto out = infer.infer(rec, Asn(100));
  EXPECT_EQ(out.as_path, (net::AsPath{Asn(100), Asn(200)}));
  EXPECT_TRUE(out.imputed);
  // Still classified missing-IP for Table 1 accounting.
  EXPECT_EQ(out.quality, TraceQuality::kMissingIpLevel);
}

TEST_F(InferFixture, BoundaryGapStaysUnknown) {
  AsPathInferrer infer(rib_);
  const auto rec =
      record({hop(a(100, 1)), hop(std::nullopt), hop(a(200, 1))});
  const auto out = infer.infer(rec, Asn(100));
  EXPECT_EQ(out.as_path,
            (net::AsPath{Asn(100), net::kUnknownAsn, Asn(200)}));
  EXPECT_FALSE(out.imputed);
}

TEST_F(InferFixture, UnmappedAddressIsMissingAsLevel) {
  AsPathInferrer infer(rib_);
  const IPAddr unmapped(IPv4Addr(172, 16, 0, 1));
  const auto rec = record({hop(a(100, 1)), hop(unmapped), hop(a(200, 1))});
  const auto out = infer.infer(rec, Asn(100));
  EXPECT_EQ(out.quality, TraceQuality::kMissingAsLevel);
  EXPECT_EQ(out.as_path,
            (net::AsPath{Asn(100), net::kUnknownAsn, Asn(200)}));
}

TEST_F(InferFixture, UnresponsiveOutranksUnmapped) {
  AsPathInferrer infer(rib_);
  const IPAddr unmapped(IPv4Addr(172, 16, 0, 1));
  const auto rec = record({hop(a(100, 1)), hop(unmapped), hop(std::nullopt),
                           hop(a(200, 1))});
  EXPECT_EQ(infer.infer(rec, Asn(100)).quality,
            TraceQuality::kMissingIpLevel);
}

TEST_F(InferFixture, UnmappedGapImputedWhenFlanked) {
  AsPathInferrer infer(rib_);
  const IPAddr unmapped(IPv4Addr(172, 16, 0, 1));
  const auto rec = record(
      {hop(a(100, 1)), hop(unmapped), hop(a(100, 2)), hop(a(200, 1))});
  const auto out = infer.infer(rec, Asn(100));
  EXPECT_EQ(out.as_path, (net::AsPath{Asn(100), Asn(200)}));
  EXPECT_TRUE(out.imputed);
}

TEST_F(InferFixture, DetectsAsLoop) {
  AsPathInferrer infer(rib_);
  const auto rec = record({hop(a(100, 1)), hop(a(200, 1)), hop(a(100, 2)),
                           hop(a(200, 2))});
  EXPECT_TRUE(infer.infer(rec, Asn(100)).has_as_loop);
}

TEST_F(InferFixture, NoLoopForConsecutiveSameAs) {
  AsPathInferrer infer(rib_);
  const auto rec = record({hop(a(100, 1)), hop(a(100, 2)), hop(a(300, 1))});
  EXPECT_FALSE(infer.infer(rec, Asn(100)).has_as_loop);
}

TEST_F(InferFixture, SourceAsnAnchorsPath) {
  AsPathInferrer infer(rib_);
  // First hop already in a different AS (e.g. provider-assigned gateway):
  // the source AS still leads the path.
  const auto rec = record({hop(a(200, 1)), hop(a(300, 1))});
  const auto out = infer.infer(rec, Asn(100));
  EXPECT_EQ(out.as_path, (net::AsPath{Asn(100), Asn(200), Asn(300)}));
}

TEST_F(InferFixture, MultipleGapRunsCollapse) {
  AsPathInferrer infer(rib_);
  const auto rec =
      record({hop(std::nullopt), hop(std::nullopt), hop(a(200, 1))});
  const auto out = infer.infer(rec, Asn(100));
  EXPECT_EQ(out.as_path,
            (net::AsPath{Asn(100), net::kUnknownAsn, Asn(200)}));
}

}  // namespace
}  // namespace s2s::core
