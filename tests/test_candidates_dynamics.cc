#include <gtest/gtest.h>

#include "routing/candidates.h"
#include "routing/dynamics.h"
#include "topology/generator.h"

namespace s2s::routing {
namespace {

using topology::AsId;
using topology::Topology;

Topology make_topo(std::uint64_t seed) {
  topology::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.tier1_count = 5;
  cfg.transit_count = 25;
  cfg.stub_count = 80;
  cfg.server_count = 30;
  return topology::generate(cfg);
}

std::vector<std::pair<AsId, AsId>> server_as_pairs(const Topology& topo) {
  std::vector<std::pair<AsId, AsId>> pairs;
  for (const auto& a : topo.servers) {
    for (const auto& b : topo.servers) {
      if (a.as_id != b.as_id) pairs.emplace_back(a.as_id, b.as_id);
    }
  }
  return pairs;
}

TEST(CandidateTable, PrimaryFirstAndConsistent) {
  const Topology topo = make_topo(21);
  const ValleyFreeRouter router(topo);
  const auto pairs = server_as_pairs(topo);
  const CandidateTable table(router, net::Family::kIPv4, pairs);

  std::size_t with_primary = 0;
  table.for_each([&](AsId src, AsId dst, const CandidateSet& set) {
    if (set.candidates.empty()) return;
    const Candidate& primary = set.candidates.front();
    EXPECT_TRUE(primary.primary);
    EXPECT_EQ(primary.path.front(), src);
    EXPECT_EQ(primary.path.back(), dst);
    EXPECT_EQ(primary.adjs.size() + 1, primary.path.size());
    // The primary equals the live no-failure route.
    const auto base = router.compute(dst, net::Family::kIPv4);
    EXPECT_EQ(*router.extract(base, src), primary.path);
    // Alternates are distinct paths with the same endpoints.
    for (std::size_t i = 1; i < set.candidates.size(); ++i) {
      EXPECT_FALSE(set.candidates[i].primary);
      EXPECT_NE(set.candidates[i].path, primary.path);
      EXPECT_EQ(set.candidates[i].path.front(), src);
      EXPECT_EQ(set.candidates[i].path.back(), dst);
    }
    ++with_primary;
  });
  EXPECT_GT(with_primary, pairs.size() / 2);
}

TEST(CandidateTable, ResolveSkipsFailedCandidates) {
  const Topology topo = make_topo(22);
  const ValleyFreeRouter router(topo);
  const auto pairs = server_as_pairs(topo);
  const CandidateTable table(router, net::Family::kIPv4, pairs);

  AdjacencyMask failed(topo.adjacencies.size(), false);
  std::size_t rerouted = 0;
  table.for_each([&](AsId, AsId, const CandidateSet& set) {
    if (set.candidates.size() < 2) return;
    const Candidate* no_fail = set.resolve(failed);
    ASSERT_NE(no_fail, nullptr);
    EXPECT_TRUE(no_fail->primary);
    // Fail the first adjacency of the primary; the resolved path must
    // avoid it.
    const auto broken = no_fail->adjs.front();
    failed[broken] = true;
    const Candidate* alt = set.resolve(failed);
    failed[broken] = false;
    if (alt != nullptr) {
      EXPECT_EQ(std::find(alt->adjs.begin(), alt->adjs.end(), broken),
                alt->adjs.end());
      ++rerouted;
    }
  });
  EXPECT_GT(rerouted, 0u);
}

TEST(CandidateTable, AlternateMatchesExactRecomputation) {
  const Topology topo = make_topo(23);
  const ValleyFreeRouter router(topo);
  const auto pairs = server_as_pairs(topo);
  const CandidateTable table(router, net::Family::kIPv4, pairs);

  AdjacencyMask failed(topo.adjacencies.size(), false);
  std::size_t verified = 0;
  table.for_each([&](AsId src, AsId dst, const CandidateSet& set) {
    if (set.candidates.size() < 2 || verified >= 50) return;
    const auto broken = set.candidates.front().adjs.front();
    failed[broken] = true;
    const Candidate* alt = set.resolve(failed);
    const auto exact = router.compute(dst, net::Family::kIPv4, &failed);
    const auto exact_path = router.extract(exact, src);
    failed[broken] = false;
    if (alt != nullptr && exact_path.has_value()) {
      EXPECT_EQ(alt->path, *exact_path);
      ++verified;
    }
  });
  EXPECT_GT(verified, 10u);
}

TEST(OutageSchedule, RespectsSeverityCalibration) {
  const Topology topo = make_topo(24);
  DynamicsConfig cfg;
  cfg.mean_outages_per_adjacency = 20.0;  // dense, for statistics
  cfg.rate_sigma = 0.1;
  cfg.oscillate_fraction = 0.0;
  // Low severity -> long repairs; high severity -> short repairs.
  auto severity = [&](topology::AdjacencyId id) {
    return id % 2 == 0 ? 0.0 : 150.0;
  };
  const OutageSchedule schedule(topo, cfg, severity, stats::Rng(5));

  double low_sum = 0, high_sum = 0;
  std::size_t low_n = 0, high_n = 0;
  for (topology::AdjacencyId id = 0; id < topo.adjacencies.size(); ++id) {
    for (const auto& outage : schedule.outages(id)) {
      const double hours = (outage.end - outage.start) / 3600.0;
      if (id % 2 == 0) {
        low_sum += hours;
        ++low_n;
      } else {
        high_sum += hours;
        ++high_n;
      }
    }
  }
  ASSERT_GT(low_n, 100u);
  ASSERT_GT(high_n, 100u);
  EXPECT_GT(low_sum / low_n, 10.0 * (high_sum / high_n));
}

TEST(OutageSchedule, IsDownMatchesIntervals) {
  const Topology topo = make_topo(25);
  DynamicsConfig cfg;
  cfg.mean_outages_per_adjacency = 5.0;
  cfg.oscillate_fraction = 0.0;
  const OutageSchedule schedule(topo, cfg, [](auto) { return 50.0; },
                                stats::Rng(6));
  std::size_t checked = 0;
  for (topology::AdjacencyId id = 0; id < topo.adjacencies.size() && checked < 2000;
       ++id) {
    for (const auto& outage : schedule.outages(id)) {
      const net::SimTime mid((outage.start.seconds() + outage.end.seconds()) / 2);
      if (outage.v4) {
        EXPECT_TRUE(schedule.is_down(id, net::Family::kIPv4, mid));
      }
      if (outage.v6) {
        EXPECT_TRUE(schedule.is_down(id, net::Family::kIPv6, mid));
      }
      // Beyond the schedule horizon everything is up again.
      EXPECT_FALSE(schedule.is_down(id, net::Family::kIPv4,
                                    net::SimTime::from_days(cfg.campaign_days) +
                                        86400));
      ++checked;
    }
  }
  EXPECT_GT(checked, 100u);
}

TEST(OutageSchedule, PlaneCouplingFractions) {
  const Topology topo = make_topo(26);
  DynamicsConfig cfg;
  cfg.mean_outages_per_adjacency = 10.0;
  cfg.rate_sigma = 0.1;
  cfg.oscillate_fraction = 0.0;
  const OutageSchedule schedule(topo, cfg, [](auto) { return 0.0; },
                                stats::Rng(7));
  std::size_t both = 0, v4_only = 0, v6_only = 0;
  for (topology::AdjacencyId id = 0; id < topo.adjacencies.size(); ++id) {
    for (const auto& o : schedule.outages(id)) {
      if (o.v4 && o.v6) ++both;
      else if (o.v4) ++v4_only;
      else ++v6_only;
    }
  }
  const double total = static_cast<double>(both + v4_only + v6_only);
  ASSERT_GT(total, 1000.0);
  EXPECT_NEAR(both / total, 0.70, 0.04);
  EXPECT_NEAR(v4_only / total, 0.20, 0.04);
  EXPECT_NEAR(v6_only / total, 0.10, 0.04);
}

TEST(OutageSchedule, OscillatorsOnlyOnEligibleAdjacencies) {
  const Topology topo = make_topo(27);
  DynamicsConfig cfg;
  cfg.mean_outages_per_adjacency = 0.0;  // isolate oscillators
  cfg.oscillate_fraction = 1.0;
  cfg.oscillate_max_severity_ms = 18.0;
  auto severity = [&](topology::AdjacencyId id) {
    return id % 3 == 0 ? 10.0 : 100.0;  // only id%3==0 eligible
  };
  const OutageSchedule schedule(topo, cfg, severity, stats::Rng(8));
  for (topology::AdjacencyId id = 0; id < topo.adjacencies.size(); ++id) {
    if (id % 3 == 0) {
      EXPECT_FALSE(schedule.outages(id).empty()) << id;
    } else {
      EXPECT_TRUE(schedule.outages(id).empty()) << id;
    }
  }
}

}  // namespace
}  // namespace s2s::routing
