// Tests for the live-observability layer (DESIGN.md section 13):
// windowed histogram rotation under an injected clock (including the
// 1-vs-8-thread determinism contract), Prometheus text exposition,
// slow-query-log gating / rate limiting / ring bound, cross-process
// trace identity in the chrome export, histogram overflow surfacing,
// RunReport schema v2 round-trip, and the log timestamp format.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "obs/windowed.h"
#include "svc/slow_log.h"

namespace s2s {
namespace {

// ---------------------------------------------------------------------------
// WindowedHistogram.
// ---------------------------------------------------------------------------

TEST(Windowed, MergesOnlySlotsInsideTheWindow) {
  std::int64_t fake_ms = 0;
  // 3 slots x 1s: the window covers the last 3 seconds.
  obs::WindowedHistogram w({10.0, 100.0}, /*window_seconds=*/3, /*slots=*/3,
                           [&] { return fake_ms; });
  w.record(5.0);
  fake_ms = 1000;
  w.record(50.0);
  fake_ms = 2000;
  w.record(500.0);

  auto snap = w.snapshot();
  EXPECT_DOUBLE_EQ(snap.window_s, 3.0);
  ASSERT_EQ(snap.hist.counts.size(), 3u);
  EXPECT_EQ(snap.hist.total, 3u);
  EXPECT_EQ(snap.hist.counts[0], 1u);
  EXPECT_EQ(snap.hist.counts[1], 1u);
  EXPECT_EQ(snap.hist.overflow(), 1u);

  // Advance past the first sample's tick: it ages out of the merge.
  fake_ms = 3000;
  snap = w.snapshot();
  EXPECT_EQ(snap.hist.total, 2u);
  EXPECT_EQ(snap.hist.counts[0], 0u);

  // Far future: everything aged out; the next record lands alone in a
  // recycled (zeroed) slot.
  fake_ms = 60000;
  EXPECT_EQ(w.snapshot().hist.total, 0u);
  w.record(5.0);
  snap = w.snapshot();
  EXPECT_EQ(snap.hist.total, 1u);
  EXPECT_EQ(snap.hist.counts[0], 1u);
}

TEST(Windowed, SlotRecyclingZeroesStaleCounts) {
  std::int64_t fake_ms = 0;
  obs::WindowedHistogram w({10.0}, /*window_seconds=*/2, /*slots=*/2,
                           [&] { return fake_ms; });
  w.record(1.0);
  w.record(1.0);
  // Two full window-lengths later the same physical slot is reused; the
  // old counts must not leak into the new tick.
  fake_ms = 4000;
  w.record(1.0);
  const auto snap = w.snapshot();
  EXPECT_EQ(snap.hist.total, 1u);
}

TEST(Windowed, OneAndEightThreadSnapshotsAreIdentical) {
  // The merged snapshot is a pure function of the (tick, value) multiset,
  // not the recording threads. Record the same samples at the same fake
  // ticks with 1 and with 8 threads; the snapshots must match exactly.
  const std::vector<double> bounds = {10.0, 100.0, 1000.0};
  std::vector<std::pair<std::int64_t, double>> samples;
  for (int tick = 0; tick < 3; ++tick) {
    for (int i = 0; i < 64; ++i) {
      samples.emplace_back(tick * 1000,
                           static_cast<double>((i * 37) % 1500));
    }
  }

  auto run = [&](int threads) {
    std::atomic<std::int64_t> fake_ms{0};
    obs::WindowedHistogram w(bounds, /*window_seconds=*/4, /*slots=*/4,
                             [&] { return fake_ms.load(); });
    // Phase-stepped: all threads record one tick's samples, then the
    // clock advances — so no sample straddles a rotation boundary.
    std::size_t begin = 0;
    while (begin < samples.size()) {
      std::size_t end = begin;
      while (end < samples.size() &&
             samples[end].first == samples[begin].first) {
        ++end;
      }
      fake_ms.store(samples[begin].first);
      std::vector<std::thread> pool;
      for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
          for (std::size_t i = begin + static_cast<std::size_t>(t);
               i < end; i += static_cast<std::size_t>(threads)) {
            w.record(samples[i].second);
          }
        });
      }
      for (auto& th : pool) th.join();
      begin = end;
    }
    return w.snapshot();
  };

  const auto serial = run(1);
  const auto wide = run(8);
  EXPECT_EQ(serial.hist.total, wide.hist.total);
  ASSERT_EQ(serial.hist.counts.size(), wide.hist.counts.size());
  for (std::size_t i = 0; i < serial.hist.counts.size(); ++i) {
    EXPECT_EQ(serial.hist.counts[i], wide.hist.counts[i]) << "bucket " << i;
  }
  EXPECT_DOUBLE_EQ(serial.hist.quantile(0.99), wide.hist.quantile(0.99));
}

TEST(Windowed, SloStatRatio) {
  obs::SloStat s;
  EXPECT_DOUBLE_EQ(s.good_ratio(), 1.0);  // vacuous: nothing measured
  s.good = 3;
  s.total = 4;
  EXPECT_DOUBLE_EQ(s.good_ratio(), 0.75);
}

// ---------------------------------------------------------------------------
// Prometheus text exposition.
// ---------------------------------------------------------------------------

TEST(Prometheus, SanitizesNames) {
  EXPECT_EQ(obs::prometheus_name("s2s.svc.requests"), "s2s_svc_requests");
  EXPECT_EQ(obs::prometheus_name("a-b c%"), "a_b_c_");
  EXPECT_EQ(obs::prometheus_name("9lives"), "_lives");  // no leading digit
  EXPECT_EQ(obs::prometheus_name(""), "_");
  EXPECT_EQ(obs::prometheus_name("ok_name:x"), "ok_name:x");
}

TEST(Prometheus, RendersCountersGaugesAndCumulativeHistograms) {
  obs::MetricsRegistry reg;
  reg.counter("s2s.svc.requests").inc(7);
  reg.gauge("s2s.svc.uptime_s").set(12.5);
  const obs::Histogram h = reg.histogram("s2s.svc.latency_us", {1.0, 10.0});
  h.record(0.5);
  h.record(5.0);
  h.record(99.0);  // overflow

  const std::string text = obs::to_prometheus_text(reg.snapshot());
  EXPECT_NE(text.find("# TYPE s2s_svc_requests_total counter\n"
                      "s2s_svc_requests_total 7\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE s2s_svc_uptime_s gauge\n"
                      "s2s_svc_uptime_s 12.5\n"),
            std::string::npos)
      << text;
  // Cumulative buckets with the mandatory +Inf equal to the count.
  EXPECT_NE(text.find("s2s_svc_latency_us_bucket{le=\"1\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("s2s_svc_latency_us_bucket{le=\"10\"} 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("s2s_svc_latency_us_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("s2s_svc_latency_us_count 3\n"), std::string::npos)
      << text;
}

TEST(Prometheus, CounterAlreadyEndingInTotalIsNotDoubled) {
  obs::MetricsRegistry reg;
  reg.counter("s2s.svc.slo.pair_rtt.total").inc(2);
  const std::string text = obs::to_prometheus_text(reg.snapshot());
  EXPECT_NE(text.find("s2s_svc_slo_pair_rtt_total 2\n"), std::string::npos)
      << text;
  EXPECT_EQ(text.find("total_total"), std::string::npos) << text;
}

TEST(Prometheus, AppendsWindowedAndSloGauges) {
  std::int64_t fake_ms = 0;
  obs::WindowedHistogram w({10.0, 100.0}, 3, 3, [&] { return fake_ms; });
  w.record(5.0);
  w.record(50.0);
  std::map<std::string, obs::WindowedSnapshot> windowed;
  windowed["s2s.svc.windowed_us.pair_rtt"] = w.snapshot();
  std::map<std::string, obs::SloStat> slo;
  slo["s2s.svc.slo.pair_rtt"] = {50000.0, 9, 10};

  const std::string text = obs::to_prometheus_text({}, windowed, slo);
  EXPECT_NE(text.find("s2s_svc_windowed_us_pair_rtt_count 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("s2s_svc_windowed_us_pair_rtt_window_s 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("s2s_svc_windowed_us_pair_rtt_p99 "), std::string::npos)
      << text;
  EXPECT_NE(text.find("s2s_svc_slo_pair_rtt_threshold_us 50000\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("s2s_svc_slo_pair_rtt_good_ratio 0.9"),
            std::string::npos)
      << text;
}

// ---------------------------------------------------------------------------
// Slow-query log.
// ---------------------------------------------------------------------------

svc::SlowQueryEntry slow_entry(std::int64_t total_us) {
  svc::SlowQueryEntry e;
  e.trace_id = 0x2a;
  e.type = "figure_digest";
  e.total_us = total_us;
  e.queue_us = 1;
  e.exec_us = total_us - 1;
  e.cache_status = "miss";
  e.admission = "admitted";
  e.response = "ok";
  return e;
}

TEST(SlowQueryLog, DisabledAndUnderThresholdEmitNothing) {
  std::vector<std::string> lines;
  obs::set_log_sink([&](obs::LogLevel, std::string_view m) {
    lines.emplace_back(m);
  });
  svc::SlowQueryLog off({/*threshold_us=*/0});
  EXPECT_FALSE(off.enabled());
  EXPECT_FALSE(off.emit(slow_entry(1000000)));

  svc::SlowQueryLog log({/*threshold_us=*/1000});
  EXPECT_TRUE(log.enabled());
  EXPECT_FALSE(log.emit(slow_entry(1000)));  // threshold is exclusive
  EXPECT_TRUE(log.emit(slow_entry(1001)));
  obs::set_log_sink({});

  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].rfind("slow_query {", 0), 0u) << lines[0];
  const auto doc = obs::json::parse(lines[0].substr(sizeof("slow_query ") - 1));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("trace_id")->string, "0x000000000000002a");
  EXPECT_EQ(doc->find("type")->string, "figure_digest");
  EXPECT_EQ(doc->find("total_us")->as_u64(), 1001u);
  EXPECT_EQ(doc->find("cache")->string, "miss");
  EXPECT_EQ(doc->find("admission")->string, "admitted");
  EXPECT_EQ(doc->find("response")->string, "ok");
}

TEST(SlowQueryLog, RateLimitsAndReportsSuppressedNextInterval) {
  std::int64_t fake_ms = 0;
  std::vector<std::string> lines;
  obs::set_log_sink([&](obs::LogLevel, std::string_view m) {
    lines.emplace_back(m);
  });
  svc::SlowQueryLog log({/*threshold_us=*/10, /*max_per_interval=*/2,
                         /*interval_ms=*/1000, /*max_entries=*/128},
                        [&] { return fake_ms; });
  for (int i = 0; i < 5; ++i) log.emit(slow_entry(100));
  EXPECT_EQ(log.emitted(), 2u);
  EXPECT_EQ(log.suppressed(), 3u);
  ASSERT_EQ(lines.size(), 2u);

  // Next interval: the first line carries the suppressed count.
  fake_ms = 1500;
  EXPECT_TRUE(log.emit(slow_entry(100)));
  obs::set_log_sink({});
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[2].find("(+3 suppressed last interval)"), std::string::npos)
      << lines[2];
  // All six entries were retained regardless of rate limiting.
  EXPECT_EQ(log.entries().size(), 6u);
}

TEST(SlowQueryLog, RingBoundKeepsOnlyTheNewest) {
  obs::set_log_level(obs::LogLevel::kOff);
  svc::SlowQueryLog log({/*threshold_us=*/10, /*max_per_interval=*/1000,
                         /*interval_ms=*/1000, /*max_entries=*/4});
  for (int i = 0; i < 10; ++i) log.emit(slow_entry(100 + i));
  obs::set_log_level(obs::LogLevel::kInfo);
  const auto entries = log.entries();
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries.front().total_us, 106);  // oldest retained
  EXPECT_EQ(entries.back().total_us, 109);
}

// ---------------------------------------------------------------------------
// Cross-process trace identity.
// ---------------------------------------------------------------------------

TEST(TraceContext, ExplicitIdsStitchClientAndServerSpans) {
  obs::TraceCollector collector;
  std::uint64_t trace_id = 0;
  std::uint64_t client_span = 0;
  {
    // Client side: the call span mints the trace id.
    obs::TraceSpan rpc("rpc:pair_rtt", /*trace_id=*/0, /*parent_span_id=*/0,
                       collector);
    trace_id = rpc.trace_id();
    client_span = rpc.span_id();
    EXPECT_NE(trace_id, 0u);
    // "Server" side, as if the ids had crossed the wire.
    obs::TraceSpan server("server:pair_rtt", trace_id, client_span,
                          collector);
    server.set_note("won");
    EXPECT_EQ(server.trace_id(), trace_id);
    { obs::TraceSpan phase("exec", collector); }
  }
  const auto events = collector.events();
  ASSERT_EQ(events.size(), 3u);
  // RAII commit order: exec, server, rpc. The nested phase span inherits
  // the wire trace id through the thread-local chain.
  EXPECT_EQ(events[0].name, "exec");
  EXPECT_EQ(events[0].trace_id, trace_id);
  EXPECT_EQ(events[0].parent_span_id, events[1].span_id);
  EXPECT_EQ(events[1].parent_span_id, client_span);
  EXPECT_EQ(events[1].note, "won");
  EXPECT_EQ(events[2].span_id, client_span);
  EXPECT_EQ(events[2].parent_span_id, 0u);

  // The chrome export carries the ids as hex strings.
  const auto doc = obs::json::parse(collector.to_chrome_json());
  ASSERT_TRUE(doc.has_value());
  const auto& evs = doc->find("traceEvents")->array;
  ASSERT_EQ(evs.size(), 3u);
  const auto* args = evs[1].find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->find("trace_id")->string.rfind("0x", 0), 0u);
  EXPECT_EQ(args->find("trace_id")->string,
            evs[0].find("args")->find("trace_id")->string);
  EXPECT_EQ(args->find("note")->string, "won");
}

TEST(TraceContext, PlainSpansStayUntraced) {
  obs::TraceCollector collector;
  { obs::TraceSpan local("pipeline", collector); }
  const auto events = collector.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].trace_id, 0u);
  EXPECT_NE(events[0].span_id, 0u);  // span ids are always minted
  // Untraced events do not carry id args in the export.
  EXPECT_EQ(collector.to_chrome_json().find("trace_id"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Overflow surfacing, RunReport v2, log timestamps.
// ---------------------------------------------------------------------------

TEST(Metrics, SnapshotSurfacesOverflow) {
  obs::MetricsRegistry reg;
  const obs::Histogram h = reg.histogram("h", {1.0, 10.0});
  h.record(0.5);
  h.record(11.0);
  h.record(1e9);
  const auto snap = reg.snapshot().histograms.at("h");
  EXPECT_EQ(snap.overflow(), 2u);
  EXPECT_EQ(obs::HistogramSnapshot{}.overflow(), 0u);
}

TEST(RunReport, SchemaV2RoundTripsWindowedSloAndOverflow) {
  obs::MetricsRegistry reg;
  obs::TraceCollector collector;
  reg.histogram("h", {1.0}).record(5.0);  // one overflow sample

  obs::RunReport report = obs::build_run_report("test_tool", reg, collector);
  std::int64_t fake_ms = 0;
  obs::WindowedHistogram w({10.0, 100.0}, 3, 3, [&] { return fake_ms; });
  w.record(5.0);
  w.record(50.0);
  report.windowed["s2s.svc.windowed_us.pair_rtt"] = w.snapshot();
  report.slo["s2s.svc.slo.pair_rtt"] = {50000.0, 9, 10};

  EXPECT_EQ(obs::kRunReportSchemaVersion, 2);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"schema_version\":2"), std::string::npos);
  EXPECT_NE(json.find("\"overflow\":1"), std::string::npos) << json;

  const auto parsed = obs::RunReport::parse(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->histograms.at("h").overflow(), 1u);
  const auto& ws = parsed->windowed.at("s2s.svc.windowed_us.pair_rtt");
  EXPECT_DOUBLE_EQ(ws.window_s, 3.0);
  EXPECT_EQ(ws.hist.total, 2u);
  ASSERT_EQ(ws.hist.counts.size(), 3u);
  const auto& slo = parsed->slo.at("s2s.svc.slo.pair_rtt");
  EXPECT_DOUBLE_EQ(slo.threshold_us, 50000.0);
  EXPECT_EQ(slo.good, 9u);
  EXPECT_EQ(slo.total, 10u);
  EXPECT_DOUBLE_EQ(slo.good_ratio(), 0.9);
}

TEST(RunReport, V1DocumentWithoutNewSectionsStillParses) {
  obs::MetricsRegistry reg;
  obs::TraceCollector collector;
  obs::RunReport report = obs::build_run_report("t", reg, collector);
  std::string json = report.to_json();
  // Strip the v2-only sections a v1 writer would not have emitted.
  const auto windowed_at = json.find(",\"windowed\"");
  ASSERT_NE(windowed_at, std::string::npos);
  json = json.substr(0, windowed_at) + "}";
  const auto parsed = obs::RunReport::parse(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->windowed.empty());
  EXPECT_TRUE(parsed->slo.empty());
}

TEST(Log, TimestampIsFixedWidthUtc) {
  EXPECT_EQ(obs::log_timestamp_utc(0), "1970-01-01T00:00:00.000Z");
  EXPECT_EQ(obs::log_timestamp_utc(1786192496789LL),
            "2026-08-08T12:34:56.789Z");
  EXPECT_EQ(obs::log_timestamp_utc(1786192496789LL).size(), 24u);
}

TEST(Log, DefaultSinkPrefixesTimestampAndLevel) {
  // The default sink writes to stderr; pin the format via the exposed
  // helper plus a captured sink carrying the same message unchanged.
  std::string captured;
  obs::set_log_sink([&](obs::LogLevel level, std::string_view m) {
    captured = "s2s " + obs::log_timestamp_utc(0) + " [" +
               std::string(obs::to_string(level)) + "] " + std::string(m);
  });
  obs::log_message(obs::LogLevel::kWarn, "drift detected");
  obs::set_log_sink({});
  EXPECT_EQ(captured, "s2s 1970-01-01T00:00:00.000Z [warn] drift detected");
}

}  // namespace
}  // namespace s2s
