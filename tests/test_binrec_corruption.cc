// Corruption matrix for the `.s2sb` format: BlockCorruptor drives every
// fault class over every block position, and both reader arms must skip
// exactly the damaged blocks — no crash, no silent wrong record, and
// injected-vs-detected counts exactly equal. Runs under ASan/UBSan and
// TSan in CI (the io label).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "core/data_quality.h"
#include "faultsim/block_corruptor.h"
#include "io/binrec.h"
#include "stats/rng.h"

namespace s2s {
namespace {

using faultsim::BlockCorruptor;
using faultsim::BlockCorruptorConfig;
using faultsim::BlockFault;
using probe::PingRecord;
using probe::TracerouteRecord;

/// Single-kind archive with one block per epoch: the per-block record
/// partition is then exact and ordered, so "skip block i" has a unique
/// expected surviving sequence.
struct PingArchive {
  std::string image;
  std::vector<std::vector<PingRecord>> epochs;
  std::size_t total = 0;
};

PingArchive make_ping_archive(std::uint64_t seed, std::size_t n_epochs,
                              std::size_t per_epoch,
                              bool with_footer = true) {
  PingArchive a;
  stats::Rng rng(seed);
  std::ostringstream out(std::ios::binary);
  io::BinRecordWriter writer(
      out, io::BinWriterConfig{.block_records = 4096,
                               .write_header = true,
                               .write_footer = with_footer});
  for (std::size_t e = 0; e < n_epochs; ++e) {
    a.epochs.emplace_back();
    for (std::size_t i = 0; i < per_epoch; ++i) {
      PingRecord r;
      r.src = static_cast<topology::ServerId>(rng.below(20));
      r.dst = static_cast<topology::ServerId>(rng.below(20));
      r.family = rng.chance(0.5) ? net::Family::kIPv4 : net::Family::kIPv6;
      r.time = net::SimTime(static_cast<std::int64_t>(e) * 10'800 +
                            static_cast<std::int64_t>(i));
      r.success = rng.chance(0.9);
      r.rtt_ms = static_cast<double>(rng.below(2'000'000)) / 1000.0;
      a.epochs.back().push_back(r);
      writer.write(r);
      ++a.total;
    }
    writer.flush_block();
  }
  writer.finish();
  a.image = out.str();
  return a;
}

struct ReadOutcome {
  std::vector<PingRecord> pings;
  io::BinReadCounters counters;
  bool ok = false;
};

ReadOutcome read_stream(const std::string& image) {
  ReadOutcome o;
  std::istringstream in(image, std::ios::binary);
  io::BinRecordReader reader(in);
  o.ok = reader.ok();
  if (!o.ok) return o;
  reader.read_all([](const TracerouteRecord&) {},
                  [&](const PingRecord& r) { o.pings.push_back(r); });
  o.counters = reader.counters();
  return o;
}

ReadOutcome read_mmap(const std::string& image) {
  ReadOutcome o;
  io::BinRecordMmapReader reader(image.data(), image.size());
  o.ok = reader.ok();
  if (!o.ok) return o;
  reader.read_all([](const TracerouteRecord&) {},
                  [&](const PingRecord& r) { o.pings.push_back(r); });
  o.counters = reader.counters();
  return o;
}

void expect_surviving_epochs(const PingArchive& a, const ReadOutcome& got,
                             std::size_t damaged_epoch) {
  std::vector<PingRecord> want;
  for (std::size_t e = 0; e < a.epochs.size(); ++e) {
    if (e == damaged_epoch) continue;
    want.insert(want.end(), a.epochs[e].begin(), a.epochs[e].end());
  }
  ASSERT_EQ(got.pings.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got.pings[i].time.seconds(), want[i].time.seconds()) << i;
    EXPECT_EQ(got.pings[i].rtt_ms, want[i].rtt_ms) << i;
    EXPECT_EQ(got.pings[i].src, want[i].src) << i;
    EXPECT_EQ(got.pings[i].dst, want[i].dst) << i;
  }
}

// -- the matrix: per-block classes x block position x reader arm ------------

class BinRecCorruptionMatrix
    : public ::testing::TestWithParam<std::tuple<BlockFault, bool>> {};

TEST_P(BinRecCorruptionMatrix, ExactlyTheDamagedBlockIsSkipped) {
  const auto [fault, with_footer] = GetParam();
  constexpr std::size_t kEpochs = 6;
  for (std::size_t target = 0; target < kEpochs; ++target) {
    const auto archive =
        make_ping_archive(40 + target, kEpochs, 30, with_footer);
    BlockCorruptor corruptor(BlockCorruptorConfig{.seed = 90 + target});
    const auto damaged = corruptor.apply(archive.image, fault, target);
    EXPECT_EQ(corruptor.stats().corrupted, 1u);
    EXPECT_EQ(corruptor.stats().records_lost, 30u);

    for (const bool use_mmap : {false, true}) {
      const auto got =
          use_mmap ? read_mmap(damaged) : read_stream(damaged);
      ASSERT_TRUE(got.ok);
      // Injected == detected, exactly.
      EXPECT_EQ(got.counters.corrupt_blocks, 1u)
          << "fault=" << static_cast<int>(fault) << " target=" << target
          << " mmap=" << use_mmap << " footer=" << with_footer;
      EXPECT_EQ(got.counters.blocks_read, kEpochs - 1);
      EXPECT_EQ(got.counters.records_read, archive.total - 30);
      EXPECT_EQ(got.counters.records_rejected, 0u);
      expect_surviving_epochs(archive, got, target);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PerBlockFaults, BinRecCorruptionMatrix,
    ::testing::Combine(::testing::Values(BlockFault::kPayloadBitFlip,
                                         BlockFault::kHeaderBitFlip,
                                         BlockFault::kCrcCorrupt),
                       ::testing::Bool()),
    [](const auto& info) {
      // std::get, not a structured binding: a bracketed binding list's
      // comma would split the macro's arguments.
      const BlockFault fault = std::get<0>(info.param);
      const bool with_footer = std::get<1>(info.param);
      std::string name;
      switch (fault) {
        case BlockFault::kPayloadBitFlip: name = "PayloadBitFlip"; break;
        case BlockFault::kHeaderBitFlip: name = "HeaderBitFlip"; break;
        case BlockFault::kCrcCorrupt: name = "CrcCorrupt"; break;
        default: name = "Other"; break;
      }
      return name + (with_footer ? "_Footer" : "_Footerless");
    });

// -- file-level classes ------------------------------------------------------

TEST(BinRecCorruption, TruncationLosesTailExactly) {
  constexpr std::size_t kEpochs = 5;
  for (std::size_t target = 0; target < kEpochs; ++target) {
    const auto archive = make_ping_archive(70 + target, kEpochs, 25);
    BlockCorruptor corruptor(BlockCorruptorConfig{.seed = 3 * target + 1});
    const auto damaged =
        corruptor.apply(archive.image, BlockFault::kTruncateMidBlock, target);
    ASSERT_LT(damaged.size(), archive.image.size());
    EXPECT_EQ(corruptor.stats().records_lost, (kEpochs - target) * 25);

    for (const bool use_mmap : {false, true}) {
      const auto got = use_mmap ? read_mmap(damaged) : read_stream(damaged);
      ASSERT_TRUE(got.ok);
      // The torn block is one corrupt block; later blocks are simply gone.
      EXPECT_EQ(got.counters.corrupt_blocks, 1u)
          << "target=" << target << " mmap=" << use_mmap;
      EXPECT_EQ(got.counters.records_read, target * 25);
      EXPECT_EQ(got.pings.size(), target * 25);
    }
  }
}

TEST(BinRecCorruption, TruncationSetsTheTornFlag) {
  const auto archive = make_ping_archive(81, 5, 25);
  // Clean archives are not torn.
  EXPECT_FALSE(read_stream(archive.image).counters.truncated);
  EXPECT_FALSE(read_mmap(archive.image).counters.truncated);

  BlockCorruptor corruptor(BlockCorruptorConfig{.seed = 17});
  const auto damaged =
      corruptor.apply(archive.image, BlockFault::kTruncateMidBlock, 2);
  for (const bool use_mmap : {false, true}) {
    const auto got = use_mmap ? read_mmap(damaged) : read_stream(damaged);
    ASSERT_TRUE(got.ok);
    EXPECT_TRUE(got.counters.truncated) << "mmap=" << use_mmap;
  }

  // The flag reaches the ingest seam, where tools (s2s_recconv info)
  // turn it into a hard failure.
  const std::string path = ::testing::TempDir() + "/binrec_torn.s2sb";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << damaged;
  }
  const auto result = io::ingest_record_file(
      path, [](const TracerouteRecord&) {}, [](const PingRecord&) {});
  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(result.truncated);
}

TEST(BinRecCorruption, DamagedFooterIsInvalidNotMerelyAbsent) {
  const auto archive = make_ping_archive(82, 4, 20);
  {
    io::BinRecordMmapReader reader(archive.image.data(),
                                   archive.image.size());
    ASSERT_TRUE(reader.ok());
    EXPECT_EQ(reader.footer_status(), io::FooterStatus::kValid);
    EXPECT_TRUE(reader.has_index());
  }
  const auto footerless = make_ping_archive(82, 4, 20, /*with_footer=*/false);
  {
    io::BinRecordMmapReader reader(footerless.image.data(),
                                   footerless.image.size());
    ASSERT_TRUE(reader.ok());
    EXPECT_EQ(reader.footer_status(), io::FooterStatus::kAbsent);
    EXPECT_FALSE(reader.has_index());
  }

  // Flip one byte inside the footer entry array: the EOF seal is intact
  // but the entries CRC no longer matches.
  std::string damaged = archive.image;
  damaged[damaged.size() - io::kBinFooterTailBytes - 1] ^= 0x01;
  io::BinRecordMmapReader reader(damaged.data(), damaged.size());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.footer_status(), io::FooterStatus::kInvalid);
  EXPECT_FALSE(reader.has_index());
  // Reading still works via the sequential fallback: every record and no
  // corrupt blocks, because only the index was damaged.
  const auto got = read_mmap(damaged);
  EXPECT_EQ(got.pings.size(), archive.total);
  EXPECT_EQ(got.counters.corrupt_blocks, 0u);
  EXPECT_FALSE(got.counters.truncated);

  // Truncation *inside the footer* (data blocks intact, EOF seal gone)
  // must also read as a damaged footer, not as a clean footerless file.
  std::string torn_footer = archive.image;
  torn_footer.resize(torn_footer.size() - 10);
  io::BinRecordMmapReader torn_reader(torn_footer.data(), torn_footer.size());
  ASSERT_TRUE(torn_reader.ok());
  std::size_t torn_records = 0;
  torn_reader.read_all([](const TracerouteRecord&) {},
                       [&](const PingRecord&) { ++torn_records; });
  EXPECT_EQ(torn_records, archive.total);
  EXPECT_EQ(torn_reader.footer_status(), io::FooterStatus::kInvalid);

  const std::string path = ::testing::TempDir() + "/binrec_bad_footer.s2sb";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << damaged;
  }
  const auto result = io::ingest_record_file(
      path, [](const TracerouteRecord&) {}, [](const PingRecord&) {});
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.footer, io::FooterStatus::kInvalid);
  EXPECT_EQ(result.records, archive.total);
}

TEST(BinRecCorruption, StaleVersionIsRejectedUpFront) {
  const auto archive = make_ping_archive(99, 4, 20);
  BlockCorruptor corruptor;
  const auto damaged =
      corruptor.apply(archive.image, BlockFault::kStaleVersion);
  EXPECT_EQ(corruptor.stats().stale_versions, 1u);
  EXPECT_EQ(corruptor.stats().records_lost, archive.total);

  const auto s = read_stream(damaged);
  EXPECT_FALSE(s.ok);
  const auto m = read_mmap(damaged);
  EXPECT_FALSE(m.ok);
}

// -- stochastic chaos: exact accounting under random block damage -----------

TEST(BinRecCorruption, StochasticManglePreservesExactAccounting) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    const auto archive = make_ping_archive(100 + seed, 12, 40);
    BlockCorruptor corruptor(
        BlockCorruptorConfig{.seed = seed, .corrupt_prob = 0.4});
    const auto damaged = corruptor.mangle(archive.image);
    const auto& stats = corruptor.stats();
    EXPECT_EQ(stats.blocks, 12u);

    for (const bool use_mmap : {false, true}) {
      const auto got = use_mmap ? read_mmap(damaged) : read_stream(damaged);
      ASSERT_TRUE(got.ok);
      EXPECT_EQ(got.counters.corrupt_blocks, stats.corrupted)
          << "seed=" << seed << " mmap=" << use_mmap;
      EXPECT_EQ(got.counters.records_read, archive.total - stats.records_lost);
      EXPECT_EQ(got.counters.blocks_read, 12u - stats.corrupted);
    }
  }
}

TEST(BinRecCorruption, CorruptBlocksFeedTheDataQualityReport) {
  const auto archive = make_ping_archive(55, 8, 16);
  BlockCorruptor corruptor(
      BlockCorruptorConfig{.seed = 8, .corrupt_prob = 0.5});
  const auto damaged = corruptor.mangle(archive.image);
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/binrec_corrupt_quality.s2sb";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << damaged;
  }
  const auto result = io::ingest_record_file(
      path, [](const TracerouteRecord&) {}, [](const PingRecord&) {});
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.corrupt_blocks, corruptor.stats().corrupted);

  core::DataQualityReport report;
  report.corrupt_blocks = result.corrupt_blocks;
  EXPECT_EQ(report.as_map().at("corrupt_blocks"),
            corruptor.stats().corrupted);
  core::DataQualityReport merged;
  merged.merge(report).merge(report);
  EXPECT_EQ(merged.corrupt_blocks, 2 * report.corrupt_blocks);
  EXPECT_NE(report.to_string().find("corrupt_blocks="), std::string::npos);
}

// -- unrestricted fuzz: never crash, never fabricate --------------------------

TEST(BinRecCorruption, ArbitraryByteFlipsNeverCrashEitherArm) {
  // Unlike mangle(), this flips *any* byte — magic, payload_bytes,
  // footer, file header — so counts need not match; the contract here is
  // purely "never crash, never deliver more than was written" (the io
  // label runs this under ASan/UBSan and TSan).
  const auto archive = make_ping_archive(123, 10, 30);
  stats::Rng rng(321);
  for (int trial = 0; trial < 200; ++trial) {
    std::string damaged = archive.image;
    const std::size_t flips = 1 + rng.below(16);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t pos = rng.below(damaged.size());
      damaged[pos] = static_cast<char>(
          static_cast<unsigned char>(damaged[pos]) ^ (1u << rng.below(8)));
    }
    if (rng.chance(0.25)) damaged.resize(rng.below(damaged.size() + 1));

    const auto s = read_stream(damaged);
    const auto m = read_mmap(damaged);
    if (s.ok) EXPECT_LE(s.pings.size(), archive.total);
    if (m.ok) EXPECT_LE(m.pings.size(), archive.total);
  }
}

}  // namespace
}  // namespace s2s
