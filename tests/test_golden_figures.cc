// Golden-figure regression: hexfloat digests of the Fig 2 / Fig 5 / Fig 9
// study outputs, checked against the corpus in tests/golden/. The same
// campaign is ingested through all three record paths — text
// (RecordReader), binary stream (BinRecordReader) and binary mmap
// (BinRecordMmapReader) — and analysed at 1 and 8 threads; every
// combination must produce the byte-identical digest. Hexfloat ("%a")
// formatting makes the digest sensitive to a single ULP of drift anywhere
// in the ingest or analysis chain.
//
// Regenerate the corpus after an *intentional* output change with
//   S2S_UPDATE_GOLDEN=1 ctest -R GoldenFigures
#include <gtest/gtest.h>

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/congestion_detect.h"
#include "core/localize.h"
#include "core/ping_series.h"
#include "core/routing_study.h"
#include "core/segment_series.h"
#include "core/timeline.h"
#include "exec/pool.h"
#include "io/binrec.h"
#include "io/records_io.h"
#include "net/timebase.h"
#include "probe/campaign.h"
#include "simnet/network.h"

#ifndef S2S_GOLDEN_DIR
#error "S2S_GOLDEN_DIR must point at tests/golden"
#endif

namespace s2s {
namespace {

using probe::PingRecord;
using probe::TracerouteRecord;

// -- digest machinery --------------------------------------------------------

/// FNV-1a 64-bit over the formatted output lines.
class Digest {
 public:
  void line(const std::string& s) {
    for (const char c : s) {
      hash_ ^= static_cast<unsigned char>(c);
      hash_ *= 0x100000001b3ull;
    }
    hash_ ^= '\n';
    hash_ *= 0x100000001b3ull;
  }

  void value(double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%a", v);
    line(buf);
  }

  void values(const char* label, const std::vector<double>& vs) {
    char buf[96];
    std::snprintf(buf, sizeof buf, "%s n=%zu", label, vs.size());
    line(buf);
    for (const double v : vs) value(v);
  }

  std::string hex() const {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%016" PRIx64, hash_);
    return buf;
  }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;  // FNV offset basis
};

std::string golden_path(const std::string& figure) {
  return std::string(S2S_GOLDEN_DIR) + "/" + figure + ".digest";
}

std::string read_golden(const std::string& figure) {
  std::ifstream in(golden_path(figure));
  std::string digest;
  in >> digest;
  return digest;
}

bool update_golden() { return std::getenv("S2S_UPDATE_GOLDEN") != nullptr; }

/// Either asserts `digest` matches the checked-in corpus or (under
/// S2S_UPDATE_GOLDEN=1) rewrites it.
void check_golden(const std::string& figure, const std::string& digest,
                  const std::string& context) {
  if (update_golden()) {
    std::ofstream out(golden_path(figure), std::ios::trunc);
    out << digest << "\n";
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path(figure);
    return;
  }
  const std::string want = read_golden(figure);
  ASSERT_FALSE(want.empty())
      << "missing golden corpus " << golden_path(figure)
      << " — regenerate with S2S_UPDATE_GOLDEN=1";
  EXPECT_EQ(digest, want) << figure << " drifted (" << context
                          << "); if intentional, regenerate with "
                             "S2S_UPDATE_GOLDEN=1";
}

// -- shared deterministic dataset --------------------------------------------

/// One simulated network plus the two campaigns the figures need,
/// serialized once into text and binary images. Built lazily and shared
/// across all tests (the topology build dominates the suite's runtime).
struct Dataset {
  std::unique_ptr<simnet::Network> net;
  // Fig 2/5 source: month-long 3-hour full-duplex traceroute campaign.
  std::string routing_text;
  std::string routing_bin;
  // Fig 9 source: week-long 30-minute follow-up campaign over the pairs
  // the ping survey flagged.
  std::string follow_text;
  std::string follow_bin;
  std::size_t follow_epochs = 0;
  std::size_t follow_pairs = 0;
};

const Dataset& dataset() {
  static const Dataset d = [] {
    Dataset out;
    simnet::NetworkConfig config;
    config.topology.seed = 7;
    config.topology.tier1_count = 4;
    config.topology.transit_count = 18;
    config.topology.stub_count = 70;
    config.topology.server_count = 16;
    // The default congested-link fractions are calibrated for the paper's
    // full-scale topology; on this small test world they frequently leave
    // the measured mesh congestion-free, which would degenerate the Fig 9
    // digest to an empty segment list. Crank them so the survey has
    // something to find, and bias episodes long so the diurnal signal
    // persists through the follow-up window.
    config.congestion.internal_fraction = 0.06;
    config.congestion.private_interconnect_fraction = 0.10;
    config.congestion.public_ixp_fraction = 0.04;
    config.congestion.permanent_prob = 0.8;
    out.net = std::make_unique<simnet::Network>(config);

    std::vector<topology::ServerId> servers;
    for (topology::ServerId s = 0; s < out.net->topo().servers.size(); ++s) {
      servers.push_back(s);
    }
    out.net->prepare_full_mesh(servers);
    const std::vector<std::pair<topology::ServerId, topology::ServerId>>
        pairs = {{0, 9}, {0, 5}, {3, 9}, {5, 7}, {2, 11}, {4, 13}, {6, 15},
                 {1, 10}};

    const auto serialize = [](probe::TracerouteCampaign& campaign,
                              std::string* text, std::string* bin) {
      std::ostringstream text_out;
      std::ostringstream bin_out(std::ios::binary);
      io::RecordWriter text_writer(text_out);
      io::BinRecordWriter bin_writer(bin_out);
      campaign.run([&](const TracerouteRecord& r) {
        text_writer.write(r);
        bin_writer.write(r);
      });
      bin_writer.finish();
      *text = text_out.str();
      *bin = bin_out.str();
    };

    {
      probe::TracerouteCampaignConfig cfg;
      cfg.days = 30.0;
      cfg.paris_switch_day = 15.0;
      cfg.seed = 11;
      probe::TracerouteCampaign campaign(*out.net, cfg, pairs);
      serialize(campaign, &out.routing_text, &out.routing_bin);
    }
    {
      // Mirror the paper's Section 5 chain: a week-long 15-minute ping
      // survey over the full mesh selects the congested pairs, and the
      // 30-minute traceroute follow-up covers exactly those.
      std::vector<std::pair<topology::ServerId, topology::ServerId>> mesh;
      for (std::size_t i = 0; i < servers.size(); ++i) {
        for (std::size_t j = i + 1; j < servers.size(); ++j) {
          mesh.emplace_back(servers[i], servers[j]);
        }
      }
      probe::PingCampaignConfig ping_cfg;
      ping_cfg.start_day = 417.0;
      ping_cfg.days = 7.0;
      ping_cfg.seed = 31;
      probe::PingCampaign pings(*out.net, ping_cfg, mesh);
      core::PingSeriesStore ping_store(ping_cfg.start_day,
                                       net::kFifteenMinutes, pings.epochs());
      pings.run([&](const PingRecord& r) { ping_store.add(r); });
      core::CongestionDetectConfig detect_cfg;
      detect_cfg.min_samples =
          static_cast<std::size_t>(0.88 * static_cast<double>(pings.epochs()));
      const auto survey = core::survey_congestion(ping_store, detect_cfg);
      std::vector<std::pair<topology::ServerId, topology::ServerId>> flagged;
      for (const auto& f : survey.flagged) flagged.emplace_back(f.src, f.dst);
      std::sort(flagged.begin(), flagged.end());
      flagged.erase(std::unique(flagged.begin(), flagged.end()),
                    flagged.end());

      probe::TracerouteCampaignConfig cfg;
      cfg.start_day = 424.0;
      cfg.days = 7.0;
      cfg.interval_s = net::kThirtyMinutes;
      cfg.paris_switch_day = 0.0;
      cfg.seed = 47;
      cfg.traceroute.stop_early_prob = 0.1;
      probe::TracerouteCampaign campaign(*out.net, cfg, flagged);
      out.follow_epochs = campaign.epochs();
      out.follow_pairs = flagged.size();
      serialize(campaign, &out.follow_text, &out.follow_bin);
    }
    return out;
  }();
  return d;
}

enum class Ingest { kText, kBinaryStream, kBinaryMmap };

const char* ingest_name(Ingest path) {
  switch (path) {
    case Ingest::kText: return "text";
    case Ingest::kBinaryStream: return "binary-stream";
    case Ingest::kBinaryMmap: return "binary-mmap";
  }
  return "?";
}

/// Feeds one serialized image (text or binary, per `path`) into the sink.
/// The mmap arm goes through a real file so the page-mapped code runs.
void ingest_image(Ingest path, const std::string& text,
                  const std::string& bin,
                  const std::function<void(const TracerouteRecord&)>& sink) {
  const auto ping_sink = [](const PingRecord&) {};
  switch (path) {
    case Ingest::kText: {
      std::istringstream in(text);
      io::RecordReader reader(in);
      reader.read_all(sink, ping_sink);
      return;
    }
    case Ingest::kBinaryStream: {
      std::istringstream in(bin, std::ios::binary);
      io::BinRecordReader reader(in);
      ASSERT_TRUE(reader.ok());
      reader.read_all(sink, ping_sink);
      return;
    }
    case Ingest::kBinaryMmap: {
      const std::string file =
          ::testing::TempDir() + "/golden_figures_ingest.s2sb";
      {
        std::ofstream out(file, std::ios::binary | std::ios::trunc);
        out << bin;
      }
      io::BinRecordMmapReader reader(file);
      ASSERT_TRUE(reader.ok());
      reader.read_all(sink, ping_sink);
      return;
    }
  }
}

// -- per-figure digests ------------------------------------------------------

std::string routing_digests(Ingest path, unsigned threads,
                            std::string* fig5_out) {
  const Dataset& d = dataset();
  core::TimelineStore store(d.net->topo(), d.net->rib(),
                            {0.0, net::kThreeHours});
  ingest_image(path, d.routing_text, d.routing_bin,
               [&](const TracerouteRecord& r) { store.add(r); });
  exec::ThreadPool pool(threads);
  const auto study = core::run_routing_study(store, {}, &pool);

  Digest fig2;
  fig2.values("fig2a.v4.unique_paths", study.v4.unique_paths);
  fig2.values("fig2a.v6.unique_paths", study.v6.unique_paths);
  fig2.values("fig2b.path_pairs_v4", study.path_pairs_v4);
  fig2.values("fig2b.path_pairs_v6", study.path_pairs_v6);

  Digest fig5;
  fig5.values("fig5.v4.lifetime_hours_p90", study.v4.lifetime_hours_p90);
  fig5.values("fig5.v4.delta_p90_ms", study.v4.delta_p90_ms);
  fig5.values("fig5.v6.lifetime_hours_p90", study.v6.lifetime_hours_p90);
  fig5.values("fig5.v6.delta_p90_ms", study.v6.delta_p90_ms);
  *fig5_out = fig5.hex();
  return fig2.hex();
}

std::string fig9_digest(Ingest path, unsigned threads) {
  const Dataset& d = dataset();
  core::SegmentSeriesStore segments(424.0, net::kThirtyMinutes,
                                    d.follow_epochs);
  ingest_image(path, d.follow_text, d.follow_bin,
               [&](const TracerouteRecord& r) { segments.add(r); });
  exec::ThreadPool pool(threads);
  core::LocalizeConfig cfg;
  cfg.min_traces =
      static_cast<std::size_t>(0.3 * static_cast<double>(d.follow_epochs));
  const auto loc = core::localize_congestion(segments, d.net->rib(), cfg,
                                             &pool);
  Digest fig9;
  {
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "fig9 segments=%zu considered=%zu localized=%zu",
                  loc.segments.size(), loc.pairs_considered,
                  loc.pairs_localized);
    fig9.line(buf);
  }
  for (const auto& seg : loc.segments) {
    char buf[128];
    std::snprintf(buf, sizeof buf, "seg %u->%u fam=%d idx=%zu", seg.src,
                  seg.dst, seg.family == net::Family::kIPv4 ? 4 : 6,
                  seg.segment_index);
    fig9.line(buf);
    fig9.value(seg.rho);
    fig9.value(seg.overhead_ms);
  }
  return fig9.hex();
}

// -- the regression ----------------------------------------------------------

TEST(GoldenFigures, AllIngestPathsAndThreadCountsMatchTheCorpus) {
  // When regenerating, only the first combination writes; the rest then
  // verify against it, so a regeneration run still proves path/thread
  // invariance.
  bool first = true;
  for (const Ingest path :
       {Ingest::kText, Ingest::kBinaryStream, Ingest::kBinaryMmap}) {
    for (const unsigned threads : {1u, 8u}) {
      const std::string context = std::string(ingest_name(path)) +
                                  " threads=" + std::to_string(threads);
      SCOPED_TRACE(context);
      std::string fig5;
      const std::string fig2 = routing_digests(path, threads, &fig5);
      const std::string fig9 = fig9_digest(path, threads);
      if (first && update_golden()) {
        check_golden("fig2", fig2, context);
        check_golden("fig5", fig5, context);
        check_golden("fig9", fig9, context);
      } else {
        EXPECT_EQ(fig2, read_golden("fig2")) << context;
        EXPECT_EQ(fig5, read_golden("fig5")) << context;
        EXPECT_EQ(fig9, read_golden("fig9")) << context;
      }
      first = false;
    }
  }
}

// A canary that fails loudly (rather than via digest mismatch) if the
// dataset itself degenerates — empty studies digest fine but regress the
// test's power silently.
TEST(GoldenFigures, DatasetIsNonDegenerate) {
  const Dataset& d = dataset();
  EXPECT_FALSE(d.routing_text.empty());
  EXPECT_GT(d.routing_bin.size(), 16u);
  EXPECT_GT(d.follow_epochs, 0u);

  core::TimelineStore store(d.net->topo(), d.net->rib(),
                            {0.0, net::kThreeHours});
  std::istringstream in(d.routing_text);
  io::RecordReader reader(in);
  reader.read_all([&](const TracerouteRecord& r) { store.add(r); },
                  [](const PingRecord&) {});
  exec::ThreadPool pool(1);
  const auto study = core::run_routing_study(store, {}, &pool);
  EXPECT_GT(study.v4.timelines, 0u);
  EXPECT_FALSE(study.v4.unique_paths.empty());
  EXPECT_FALSE(study.path_pairs_v4.empty());
  EXPECT_FALSE(study.v4.lifetime_hours_p90.empty());

  // Fig 9 must have real congestion to localize: the survey flagged
  // pairs, and at least one segment survives localization.
  EXPECT_GT(d.follow_pairs, 0u);
  core::SegmentSeriesStore segments(424.0, net::kThirtyMinutes,
                                    d.follow_epochs);
  std::istringstream fin(d.follow_text);
  io::RecordReader freader(fin);
  freader.read_all([&](const TracerouteRecord& r) { segments.add(r); },
                   [](const PingRecord&) {});
  core::LocalizeConfig cfg;
  cfg.min_traces =
      static_cast<std::size_t>(0.3 * static_cast<double>(d.follow_epochs));
  const auto loc = core::localize_congestion(segments, d.net->rib(), cfg,
                                             &pool);
  EXPECT_GT(loc.pairs_considered, 0u);
  EXPECT_FALSE(loc.segments.empty());
}

}  // namespace
}  // namespace s2s
