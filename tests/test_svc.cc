// s2sd service-layer tests: protocol framing, the sharded LRU result
// cache, and the server's acceptance contract (DESIGN.md section 11) —
// byte-identical responses cold vs. cache-hit and at 1 vs. 8 pool
// threads, protocol-error frames that leave the connection usable,
// slow-loris reaping, busy backpressure, and graceful drain.
//
// One fixture archive and one simulated deployment are built once and
// shared across every test (the topology build is the expensive part).
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/pool.h"
#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "svc/client.h"
#include "svc/dataset.h"
#include "svc/protocol.h"
#include "svc/result_cache.h"
#include "svc/retry_client.h"
#include "svc/server.h"

namespace s2s {
namespace {

svc::FixtureParams fast_fixture_params() {
  svc::FixtureParams params;
  params.trace_days = 7.0;
  params.ping_days = 3.0;
  params.max_trace_pairs = 6;
  params.max_ping_pairs = 24;
  return params;
}

struct SvcWorld {
  svc::DatasetConfig cfg;
  std::unique_ptr<svc::Dataset> dataset;  ///< owns the shared deployment
};

SvcWorld& world() {
  static SvcWorld* w = [] {
    auto* world = new SvcWorld;
    // Per-process path: parallel ctest invocations each build their own
    // fixture, and rewriting a file another process has mmap'd is SIGBUS.
    world->cfg.archive_path = ::testing::TempDir() + "s2s_test_svc_" +
                              std::to_string(::getpid()) + ".s2sb";
    std::string error;
    if (!svc::write_fixture_archive(world->cfg.archive_path, world->cfg,
                                    fast_fixture_params(), error)) {
      ADD_FAILURE() << "fixture write failed: " << error;
    }
    world->dataset = std::make_unique<svc::Dataset>(world->cfg);
    if (!world->dataset->load(error)) {
      ADD_FAILURE() << "fixture load failed: " << error;
    }
    return world;
  }();
  return *w;
}

/// A served dataset on an ephemeral port with the event loop on its own
/// thread. Destruction drains.
class TestServer {
 public:
  explicit TestServer(svc::Dataset& dataset, unsigned threads = 2,
                      svc::ServerConfig cfg = {})
      : pool_(threads), server_(dataset, &pool_, cfg) {
    std::string error;
    if (!server_.start(error)) {
      ADD_FAILURE() << "server start failed: " << error;
      return;
    }
    thread_ = std::thread([this] { server_.serve(); });
  }

  ~TestServer() { drain(); }

  void drain() {
    if (thread_.joinable()) {
      server_.request_drain();
      thread_.join();
    }
  }

  svc::Server& server() { return server_; }
  std::uint16_t port() const { return server_.port(); }

  svc::Client connect() {
    svc::Client client;
    std::string error;
    EXPECT_TRUE(client.connect("127.0.0.1", server_.port(), error)) << error;
    return client;
  }

 private:
  exec::ThreadPool pool_;
  svc::Server server_;
  std::thread thread_;
};

/// One request of every cacheable type against the fixture's first pair.
std::vector<std::pair<svc::MsgType, std::string>> cacheable_workload() {
  const auto pairs = world().dataset->trace_pairs();
  EXPECT_FALSE(pairs.empty());
  svc::PairQuery q;
  q.src = pairs.front().src;
  q.dst = pairs.front().dst;
  q.family = pairs.front().family;
  std::vector<std::pair<svc::MsgType, std::string>> out;
  out.emplace_back(svc::MsgType::kPairRtt, svc::encode_pair_query(q));
  out.emplace_back(svc::MsgType::kPathPrevalence, svc::encode_pair_query(q));
  out.emplace_back(svc::MsgType::kCongestionVerdict,
                   svc::encode_pair_query(q));
  out.emplace_back(svc::MsgType::kDualStackDelta,
                   svc::encode_dualstack_query({q.src, q.dst}));
  for (const int figure : {1, 2, 5, 10}) {
    svc::FigureQuery f;
    f.figure = static_cast<std::uint8_t>(figure);
    out.emplace_back(svc::MsgType::kFigureDigest,
                     svc::encode_figure_query(f));
  }
  return out;
}

std::string must_call(svc::Client& client, svc::MsgType type,
                      std::uint8_t flags, std::string_view payload) {
  svc::MsgType rtype;
  std::string rpayload;
  std::string error;
  EXPECT_TRUE(client.call(type, flags, payload, &rtype, &rpayload, error))
      << error;
  EXPECT_EQ(rtype, svc::MsgType::kOk)
      << svc::type_name(type) << ": " << rpayload;
  return rpayload;
}

std::uint64_t global_counter(const std::string& name) {
  const auto snapshot = obs::MetricsRegistry::global().snapshot();
  const auto it = snapshot.counters.find(name);
  return it == snapshot.counters.end() ? 0 : it->second;
}

// ---------------------------------------------------------------------------
// Protocol unit tests.
// ---------------------------------------------------------------------------

TEST(SvcProtocol, FrameRoundTrip) {
  const std::string frame =
      svc::encode_frame(svc::MsgType::kPairRtt, svc::kFlagNoCache, "payload");
  ASSERT_EQ(frame.size(), svc::kFrameHeaderBytes + 7);
  const auto* bytes = reinterpret_cast<const unsigned char*>(frame.data());
  svc::FrameHeader header;
  ASSERT_EQ(svc::parse_frame_header(bytes, header), svc::HeaderStatus::kOk);
  EXPECT_EQ(header.version, svc::kProtocolVersion);
  EXPECT_EQ(header.type, svc::MsgType::kPairRtt);
  EXPECT_EQ(header.flags, svc::kFlagNoCache);
  EXPECT_EQ(header.payload_bytes, 7u);
  EXPECT_EQ(svc::frame_crc(bytes, "payload"), header.crc);
  EXPECT_NE(svc::frame_crc(bytes, "payloaX"), header.crc);
}

TEST(SvcProtocol, RejectsBadMagicAndVersion) {
  std::string frame = svc::encode_frame(svc::MsgType::kPingEcho, 0, "");
  svc::FrameHeader header;
  std::string bad = frame;
  bad[0] = 'X';
  EXPECT_EQ(svc::parse_frame_header(
                reinterpret_cast<const unsigned char*>(bad.data()), header),
            svc::HeaderStatus::kBadMagic);
  bad = frame;
  bad[4] = 99;
  EXPECT_EQ(svc::parse_frame_header(
                reinterpret_cast<const unsigned char*>(bad.data()), header),
            svc::HeaderStatus::kBadVersion);
}

TEST(SvcProtocol, PayloadCodecs) {
  svc::PairQuery q;
  q.src = 12345;
  q.dst = 678;
  q.family = 6;
  q.arg = 9;
  const std::string encoded = svc::encode_pair_query(q);
  EXPECT_EQ(encoded.size(), 10u);
  svc::PairQuery back;
  ASSERT_TRUE(svc::decode_pair_query(encoded, back));
  EXPECT_EQ(back.src, q.src);
  EXPECT_EQ(back.dst, q.dst);
  EXPECT_EQ(back.family, q.family);
  EXPECT_EQ(back.arg, q.arg);
  EXPECT_FALSE(svc::decode_pair_query("short", back));
  std::string bad_family = encoded;
  bad_family[8] = 5;
  EXPECT_FALSE(svc::decode_pair_query(bad_family, back));

  svc::DualStackQuery d;
  d.src = 3;
  d.dst = 4;
  svc::DualStackQuery d2;
  ASSERT_TRUE(svc::decode_dualstack_query(svc::encode_dualstack_query(d), d2));
  EXPECT_EQ(d2.src, 3u);
  EXPECT_EQ(d2.dst, 4u);

  svc::FigureQuery f;
  f.figure = 10;
  svc::FigureQuery f2;
  ASSERT_TRUE(svc::decode_figure_query(svc::encode_figure_query(f), f2));
  EXPECT_EQ(f2.figure, 10u);
}

TEST(SvcProtocol, TypePredicates) {
  EXPECT_TRUE(svc::is_request(svc::MsgType::kPingEcho));
  EXPECT_TRUE(svc::is_request(svc::MsgType::kServerStats));
  EXPECT_TRUE(svc::is_request(svc::MsgType::kMetricsDump));
  EXPECT_FALSE(svc::is_request(svc::MsgType::kOk));
  EXPECT_FALSE(svc::is_request(static_cast<svc::MsgType>(0x42)));
  EXPECT_TRUE(svc::is_cacheable(svc::MsgType::kFigureDigest));
  EXPECT_FALSE(svc::is_cacheable(svc::MsgType::kPingEcho));
  EXPECT_FALSE(svc::is_cacheable(svc::MsgType::kServerStats));
  EXPECT_FALSE(svc::is_cacheable(svc::MsgType::kMetricsDump));
  EXPECT_STREQ(svc::type_name(svc::MsgType::kPairRtt), "pair_rtt");
  EXPECT_STREQ(svc::type_name(svc::MsgType::kMetricsDump), "metrics_dump");
}

TEST(SvcProtocol, TraceContextRoundTripAndShortPayload) {
  const svc::TraceContext ctx{0x1122334455667788ull, 0x99aabbccddeeff00ull};
  const std::string prefixed = svc::encode_trace_context(ctx) + "rest";
  svc::TraceContext back;
  std::string_view rest;
  ASSERT_TRUE(svc::strip_trace_context(prefixed, back, rest));
  EXPECT_EQ(back.trace_id, ctx.trace_id);
  EXPECT_EQ(back.span_id, ctx.span_id);
  EXPECT_EQ(rest, "rest");
  // An empty request payload after the prefix is legal (ping).
  ASSERT_TRUE(
      svc::strip_trace_context(svc::encode_trace_context(ctx), back, rest));
  EXPECT_TRUE(rest.empty());
  EXPECT_FALSE(svc::strip_trace_context("short", back, rest));
}

TEST(SvcProtocol, MetricsDumpQueryCodec) {
  svc::MetricsDumpQuery q;
  q.format = svc::MetricsDumpQuery::kPrometheus;
  svc::MetricsDumpQuery back;
  ASSERT_TRUE(
      svc::decode_metrics_dump_query(svc::encode_metrics_dump_query(q), back));
  EXPECT_EQ(back.format, svc::MetricsDumpQuery::kPrometheus);
  EXPECT_FALSE(svc::decode_metrics_dump_query("", back));
  EXPECT_FALSE(svc::decode_metrics_dump_query("\x07", back));
}

// ---------------------------------------------------------------------------
// Result cache unit tests.
// ---------------------------------------------------------------------------

TEST(SvcCache, LruHitMissAndKey) {
  svc::ResultCache cache;
  std::string value;
  const std::string key = svc::ResultCache::make_key(7, 2, "req");
  EXPECT_EQ(key.size(), 9u + 3u);
  EXPECT_NE(key, svc::ResultCache::make_key(8, 2, "req"));
  EXPECT_NE(key, svc::ResultCache::make_key(7, 3, "req"));
  EXPECT_FALSE(cache.lookup(key, value));
  cache.insert(key, "response");
  ASSERT_TRUE(cache.lookup(key, value));
  EXPECT_EQ(value, "response");
  cache.insert(key, "updated");
  ASSERT_TRUE(cache.lookup(key, value));
  EXPECT_EQ(value, "updated");
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(SvcCache, EvictsLeastRecentlyUsed) {
  // One shard, budget for about three 40-byte entries.
  svc::ResultCache cache({1, 128});
  const std::string big(30, 'v');
  std::string value;
  for (int i = 0; i < 3; ++i) {
    cache.insert(svc::ResultCache::make_key(1, 1, std::string(1, 'a' + i)),
                 big);
  }
  // Touch "a" so "b" is the LRU victim when "d" lands.
  ASSERT_TRUE(
      cache.lookup(svc::ResultCache::make_key(1, 1, "a"), value));
  cache.insert(svc::ResultCache::make_key(1, 1, "d"), big);
  EXPECT_TRUE(cache.lookup(svc::ResultCache::make_key(1, 1, "a"), value));
  EXPECT_FALSE(cache.lookup(svc::ResultCache::make_key(1, 1, "b"), value));
  EXPECT_TRUE(cache.lookup(svc::ResultCache::make_key(1, 1, "d"), value));
  EXPECT_GE(cache.stats().evictions, 1u);
  // An entry larger than the shard budget is not cached at all.
  cache.insert(svc::ResultCache::make_key(1, 1, "huge"),
               std::string(4096, 'x'));
  EXPECT_FALSE(
      cache.lookup(svc::ResultCache::make_key(1, 1, "huge"), value));
}

// ---------------------------------------------------------------------------
// Server acceptance tests.
// ---------------------------------------------------------------------------

TEST(SvcServer, ColdCacheHitAndNoCacheAreByteIdentical) {
  TestServer ts(*world().dataset);
  svc::Client client = ts.connect();
  const std::uint64_t hits_before = global_counter("s2s.svc.cache_hits");
  for (const auto& [type, payload] : cacheable_workload()) {
    const std::string cold = must_call(client, type, 0, payload);
    const std::string hit = must_call(client, type, 0, payload);
    const std::string forced =
        must_call(client, type, svc::kFlagNoCache, payload);
    EXPECT_EQ(cold, hit) << svc::type_name(type);
    EXPECT_EQ(cold, forced) << svc::type_name(type);
  }
  const auto stats = ts.server().cache_stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(global_counter("s2s.svc.cache_hits"), hits_before);
}

TEST(SvcServer, OneAndEightThreadResponsesAreByteIdentical) {
  svc::Dataset shared(world().cfg, &world().dataset->net());
  std::string error;
  ASSERT_TRUE(shared.load(error)) << error;
  TestServer serial(*world().dataset, 1);
  TestServer wide(shared, 8);
  svc::Client c1 = serial.connect();
  svc::Client c8 = wide.connect();
  for (const auto& [type, payload] : cacheable_workload()) {
    EXPECT_EQ(must_call(c1, type, 0, payload),
              must_call(c8, type, 0, payload))
        << svc::type_name(type);
  }
}

TEST(SvcServer, BadCrcAndUnknownTypeFramesKeepConnection) {
  TestServer ts(*world().dataset);
  svc::Client client = ts.connect();
  std::string error;

  // Corrupt the CRC field of a valid frame: error frame, survives.
  std::string frame = svc::encode_frame(svc::MsgType::kPingEcho, 0, "");
  frame[12] = static_cast<char>(frame[12] ^ 0x5a);
  ASSERT_TRUE(client.send_bytes(frame, error)) << error;
  svc::MsgType rtype;
  std::string rpayload;
  ASSERT_TRUE(client.read_frame(&rtype, &rpayload, error)) << error;
  EXPECT_EQ(rtype, svc::MsgType::kError);
  EXPECT_NE(rpayload.find("bad_crc"), std::string::npos) << rpayload;

  // Unknown frame type with a valid CRC: error frame, survives.
  ASSERT_TRUE(client.send_bytes(
      svc::encode_frame(static_cast<svc::MsgType>(0x42), 0, ""), error));
  ASSERT_TRUE(client.read_frame(&rtype, &rpayload, error)) << error;
  EXPECT_EQ(rtype, svc::MsgType::kError);
  EXPECT_NE(rpayload.find("bad_request"), std::string::npos) << rpayload;

  // Truncated request payload: decode fails, error frame, survives.
  ASSERT_TRUE(client.send_bytes(
      svc::encode_frame(svc::MsgType::kPairRtt, 0, "abc"), error));
  ASSERT_TRUE(client.read_frame(&rtype, &rpayload, error)) << error;
  EXPECT_EQ(rtype, svc::MsgType::kError);
  EXPECT_NE(rpayload.find("bad_request"), std::string::npos) << rpayload;

  // The connection still serves requests.
  must_call(client, svc::MsgType::kPingEcho, 0, "");
}

TEST(SvcServer, OversizedFrameSurvivesAndBadMagicCloses) {
  svc::ServerConfig cfg;
  cfg.max_request_bytes = 64;
  TestServer ts(*world().dataset, 2, cfg);
  svc::Client client = ts.connect();
  std::string error;

  // Oversized (but under the discard cap): error frame, payload drained,
  // connection survives.
  ASSERT_TRUE(client.send_bytes(
      svc::encode_frame(svc::MsgType::kPingEcho, 0, std::string(500, 'z')),
      error));
  svc::MsgType rtype;
  std::string rpayload;
  ASSERT_TRUE(client.read_frame(&rtype, &rpayload, error)) << error;
  EXPECT_EQ(rtype, svc::MsgType::kError);
  EXPECT_NE(rpayload.find("oversized"), std::string::npos) << rpayload;
  must_call(client, svc::MsgType::kPingEcho, 0, "");

  // Garbage that is not a frame: error frame, then the server closes.
  ASSERT_TRUE(client.send_bytes(std::string(16, 'X'), error));
  ASSERT_TRUE(client.read_frame(&rtype, &rpayload, error)) << error;
  EXPECT_EQ(rtype, svc::MsgType::kError);
  EXPECT_NE(rpayload.find("bad_frame"), std::string::npos) << rpayload;
  EXPECT_TRUE(client.read_eof());
}

TEST(SvcServer, SlowLorisConnectionIsReaped) {
  svc::ServerConfig cfg;
  cfg.read_timeout_ms = 200;
  TestServer ts(*world().dataset, 2, cfg);
  svc::Client client = ts.connect();
  std::string error;
  // Half a header, then silence: the read deadline must close the
  // connection even though the socket stays open.
  const std::string frame = svc::encode_frame(svc::MsgType::kPingEcho, 0, "");
  ASSERT_TRUE(client.send_bytes(frame.substr(0, 8), error)) << error;
  EXPECT_TRUE(client.read_eof());
  // Idle-but-quiet connections (no partial frame buffered) are keep-alive
  // and must NOT be reaped.
  svc::Client idle = ts.connect();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  must_call(idle, svc::MsgType::kPingEcho, 0, "");
  EXPECT_GE(ts.server().connections_reaped(), 1u);
}

TEST(SvcServer, BusyBackpressureShedsExcessPipelinedRequests) {
  svc::ServerConfig cfg;
  cfg.max_inflight = 1;
  TestServer ts(*world().dataset, 2, cfg);
  svc::Client client = ts.connect();
  std::string batch;
  for (int i = 0; i < 8; ++i) {
    batch += svc::encode_frame(svc::MsgType::kPingEcho, 0, "");
  }
  std::string error;
  ASSERT_TRUE(client.send_bytes(batch, error)) << error;
  int ok = 0, busy = 0;
  for (int i = 0; i < 8; ++i) {
    svc::MsgType rtype;
    std::string rpayload;
    ASSERT_TRUE(client.read_frame(&rtype, &rpayload, error)) << error;
    if (rtype == svc::MsgType::kOk) {
      ++ok;
    } else {
      EXPECT_NE(rpayload.find("busy"), std::string::npos) << rpayload;
      ++busy;
    }
  }
  EXPECT_GE(ok, 1);
  EXPECT_GE(busy, 1);
}

TEST(SvcServer, DrainServesInflightThenClosesListener) {
  TestServer ts(*world().dataset);
  svc::Client client = ts.connect();
  std::string error;
  svc::FigureQuery f;
  f.figure = 2;
  ASSERT_TRUE(client.send_bytes(
      svc::encode_frame(svc::MsgType::kFigureDigest, 0,
                        svc::encode_figure_query(f)),
      error));
  const std::uint16_t port = ts.port();
  ts.server().request_drain();
  // The request raced the drain; its response must still arrive.
  svc::MsgType rtype;
  std::string rpayload;
  ASSERT_TRUE(client.read_frame(&rtype, &rpayload, error)) << error;
  EXPECT_EQ(rtype, svc::MsgType::kOk) << rpayload;
  ts.drain();
  svc::Client late;
  EXPECT_FALSE(late.connect("127.0.0.1", port, error, 1000));
}

TEST(SvcServer, PollBackendServes) {
  svc::ServerConfig cfg;
  cfg.use_epoll = false;
  TestServer ts(*world().dataset, 2, cfg);
  svc::Client client = ts.connect();
  must_call(client, svc::MsgType::kPingEcho, 0, "");
  svc::FigureQuery f;
  f.figure = 1;
  must_call(client, svc::MsgType::kFigureDigest, 0,
            svc::encode_figure_query(f));
}

/// Waits up to ~2s for `pred` over the global collector's events; the
/// server commits its request span just after flushing the response, so
/// a client that already read the reply can race the commit.
std::vector<obs::SpanEvent> wait_for_spans(
    const std::function<bool(const std::vector<obs::SpanEvent>&)>& pred) {
  for (int i = 0; i < 200; ++i) {
    auto events = obs::TraceCollector::global().events();
    if (pred(events)) return events;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return obs::TraceCollector::global().events();
}

TEST(SvcServer, TracedRequestAdoptsClientTraceIdWithPhaseSpans) {
  obs::TraceCollector::global().clear();
  TestServer ts(*world().dataset);
  svc::Client client = ts.connect();
  std::string error;

  const svc::TraceContext ctx{0xabcdef0123456789ull, 0x42ull};
  svc::FigureQuery f;
  f.figure = 2;
  ASSERT_TRUE(client.send_bytes(
      svc::encode_frame(svc::MsgType::kFigureDigest, svc::kFlagTraceContext,
                        svc::encode_trace_context(ctx) +
                            svc::encode_figure_query(f)),
      error));
  svc::MsgType rtype;
  std::string rpayload;
  ASSERT_TRUE(client.read_frame(&rtype, &rpayload, error)) << error;
  EXPECT_EQ(rtype, svc::MsgType::kOk) << rpayload;

  const auto events = wait_for_spans([&](const auto& evs) {
    for (const auto& e : evs) {
      if (e.name == "server:figure_digest") return true;
    }
    return false;
  });
  const obs::SpanEvent* request = nullptr;
  for (const auto& e : events) {
    if (e.name == "server:figure_digest") request = &e;
  }
  ASSERT_NE(request, nullptr);
  // The server span adopts the wire identity: same trace id, parented
  // under the client's span.
  EXPECT_EQ(request->trace_id, ctx.trace_id);
  EXPECT_EQ(request->parent_span_id, ctx.span_id);
  // Phase sub-spans share the trace id and hang off the request span.
  std::size_t phases = 0;
  for (const auto& e : events) {
    if (e.name == "queue_wait" || e.name == "cache_lookup" ||
        e.name == "exec" || e.name == "encode" || e.name == "write") {
      EXPECT_EQ(e.trace_id, ctx.trace_id) << e.name;
      EXPECT_EQ(e.parent_span_id, request->span_id) << e.name;
      ++phases;
    }
  }
  EXPECT_GE(phases, 4u);  // queue_wait, cache_lookup, exec, encode, write
}

TEST(SvcServer, UntracedClientsAndShortTraceContextKeepWorking) {
  TestServer ts(*world().dataset);
  svc::Client client = ts.connect();
  std::string error;

  // Old client: no flag, no prefix — served exactly as before.
  must_call(client, svc::MsgType::kPingEcho, 0, "");

  // The flag without the 16-byte prefix is a protocol error, not a
  // dropped connection.
  const std::uint64_t errors_before =
      global_counter("s2s.svc.protocol_errors");
  ASSERT_TRUE(client.send_bytes(
      svc::encode_frame(svc::MsgType::kPingEcho, svc::kFlagTraceContext,
                        "short"),
      error));
  svc::MsgType rtype;
  std::string rpayload;
  ASSERT_TRUE(client.read_frame(&rtype, &rpayload, error)) << error;
  EXPECT_EQ(rtype, svc::MsgType::kError);
  EXPECT_NE(rpayload.find("bad_request"), std::string::npos) << rpayload;
  must_call(client, svc::MsgType::kPingEcho, 0, "");
  EXPECT_GT(global_counter("s2s.svc.protocol_errors"), errors_before);
}

TEST(SvcServer, TraceContextDoesNotForkTheCacheKey) {
  // A traced and an untraced request for the same query must share one
  // cache entry: the key is built from the stripped payload.
  TestServer ts(*world().dataset);
  svc::Client client = ts.connect();
  std::string error;
  svc::FigureQuery f;
  f.figure = 5;
  const std::string query = svc::encode_figure_query(f);
  const std::string plain =
      must_call(client, svc::MsgType::kFigureDigest, 0, query);
  const svc::TraceContext ctx{7, 8};
  ASSERT_TRUE(client.send_bytes(
      svc::encode_frame(svc::MsgType::kFigureDigest, svc::kFlagTraceContext,
                        svc::encode_trace_context(ctx) + query),
      error));
  svc::MsgType rtype;
  std::string rpayload;
  ASSERT_TRUE(client.read_frame(&rtype, &rpayload, error)) << error;
  EXPECT_EQ(rtype, svc::MsgType::kOk);
  EXPECT_EQ(rpayload, plain);
  const auto stats = ts.server().cache_stats();
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_GE(stats.hits, 1u);
}

TEST(SvcServer, MetricsDumpServesJsonAndPrometheus) {
  TestServer ts(*world().dataset);
  svc::Client client = ts.connect();
  must_call(client, svc::MsgType::kPingEcho, 0, "");

  svc::MetricsDumpQuery q;
  q.format = svc::MetricsDumpQuery::kJson;
  const std::string json = must_call(client, svc::MsgType::kMetricsDump, 0,
                                     svc::encode_metrics_dump_query(q));
  const auto doc = obs::json::parse(json);
  ASSERT_TRUE(doc.has_value()) << json;
  EXPECT_EQ(doc->find("type")->string, "metrics_dump");
  EXPECT_GE(doc->find("uptime_s")->number, 0.0);
  const auto* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GE(counters->find("s2s.svc.requests")->as_u64(), 1u);
  const auto* windowed = doc->find("windowed");
  ASSERT_NE(windowed, nullptr);
  const auto* ping = windowed->find("s2s.svc.windowed_us.ping_echo");
  ASSERT_NE(ping, nullptr);
  EXPECT_GE(ping->find("total")->as_u64(), 1u);
  const auto* slo = doc->find("slo");
  ASSERT_NE(slo, nullptr);
  ASSERT_NE(slo->find("s2s.svc.slo.ping_echo"), nullptr);

  q.format = svc::MetricsDumpQuery::kPrometheus;
  const std::string text = must_call(client, svc::MsgType::kMetricsDump, 0,
                                     svc::encode_metrics_dump_query(q));
  EXPECT_EQ(text.rfind("# TYPE", 0), 0u) << text.substr(0, 80);
  EXPECT_NE(text.find("s2s_svc_requests_total "), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);

  // Malformed selector: error frame, connection survives.
  std::string error;
  ASSERT_TRUE(client.send_bytes(
      svc::encode_frame(svc::MsgType::kMetricsDump, 0, "\x07"), error));
  svc::MsgType rtype;
  std::string rpayload;
  ASSERT_TRUE(client.read_frame(&rtype, &rpayload, error)) << error;
  EXPECT_EQ(rtype, svc::MsgType::kError);
  must_call(client, svc::MsgType::kPingEcho, 0, "");
}

TEST(SvcServer, StatsFieldsMoveBetweenCalls) {
  TestServer ts(*world().dataset);
  svc::Client client = ts.connect();
  const std::string before =
      must_call(client, svc::MsgType::kServerStats, 0, "");
  const auto doc1 = obs::json::parse(before);
  ASSERT_TRUE(doc1.has_value());
  const auto* srv1 = doc1->find("server");
  ASSERT_NE(srv1, nullptr);
  EXPECT_TRUE(srv1->find("trace_context")->boolean);
  const double uptime1 = srv1->find("uptime_s")->number;
  const auto requests1 = srv1->find("requests")->as_u64();
  const auto misses1 = srv1->find("cache")->find("misses")->as_u64();

  // Work the cache: one miss, one hit.
  svc::FigureQuery f;
  f.figure = 1;
  const std::string payload = svc::encode_figure_query(f);
  must_call(client, svc::MsgType::kFigureDigest, 0, payload);
  must_call(client, svc::MsgType::kFigureDigest, 0, payload);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  const auto doc2 =
      obs::json::parse(must_call(client, svc::MsgType::kServerStats, 0, ""));
  ASSERT_TRUE(doc2.has_value());
  const auto* srv2 = doc2->find("server");
  EXPECT_GT(srv2->find("uptime_s")->number, uptime1);
  EXPECT_GT(srv2->find("requests")->as_u64(), requests1);
  EXPECT_GT(srv2->find("cache")->find("misses")->as_u64(), misses1);
  EXPECT_GE(srv2->find("cache")->find("hits")->as_u64(), 1u);
  ASSERT_NE(srv2->find("slow_queries"), nullptr);
  EXPECT_DOUBLE_EQ(srv2->find("slow_queries")->find("threshold_us")->number,
                   0.0);
}

TEST(SvcServer, SlowQueriesEmitStructuredLines) {
  std::mutex mu;
  std::vector<std::string> lines;
  obs::set_log_sink([&](obs::LogLevel, std::string_view m) {
    const std::lock_guard<std::mutex> lock(mu);
    lines.emplace_back(m);
  });
  svc::ServerConfig cfg;
  cfg.slow_query_us = 1;  // everything is slow
  {
    TestServer ts(*world().dataset, 2, cfg);
    svc::Client client = ts.connect();
    svc::FigureQuery f;
    f.figure = 2;
    must_call(client, svc::MsgType::kFigureDigest, 0,
              svc::encode_figure_query(f));
    ts.drain();  // the event loop owns the log; flush before reading
    EXPECT_GE(ts.server().slow_log().emitted(), 1u);
    const auto entries = ts.server().slow_log().entries();
    ASSERT_FALSE(entries.empty());
    EXPECT_EQ(entries.front().type, "figure_digest");
    EXPECT_GT(entries.front().total_us, 0);
    EXPECT_EQ(entries.front().response, "ok");
  }
  obs::set_log_sink({});
  const std::lock_guard<std::mutex> lock(mu);
  bool saw_slow_query = false;
  for (const auto& line : lines) {
    if (line.rfind("slow_query {", 0) == 0) {
      saw_slow_query = true;
      const auto doc = obs::json::parse(line.substr(11));
      ASSERT_TRUE(doc.has_value()) << line;
      EXPECT_NE(doc->find("type"), nullptr);
      EXPECT_NE(doc->find("total_us"), nullptr);
    }
  }
  EXPECT_TRUE(saw_slow_query);
}

TEST(SvcServer, RetryingClientAndServerSpansShareTraceIds) {
  obs::TraceCollector::global().clear();
  TestServer ts(*world().dataset);
  svc::RetryPolicy policy;
  policy.trace = true;
  svc::RetryingClient client("127.0.0.1", ts.port(), policy);
  svc::MsgType rtype;
  std::string rpayload;
  std::string error;
  svc::FigureQuery f;
  f.figure = 10;
  ASSERT_TRUE(client.call(svc::MsgType::kFigureDigest, 0,
                          svc::encode_figure_query(f), &rtype, &rpayload,
                          error))
      << error;
  ASSERT_EQ(rtype, svc::MsgType::kOk);

  const auto events = wait_for_spans([](const auto& evs) {
    bool rpc = false, server = false;
    for (const auto& e : evs) {
      if (e.name == "rpc:figure_digest") rpc = true;
      if (e.name == "server:figure_digest") server = true;
    }
    return rpc && server;
  });
  const obs::SpanEvent* rpc = nullptr;
  const obs::SpanEvent* attempt = nullptr;
  const obs::SpanEvent* server = nullptr;
  for (const auto& e : events) {
    if (e.name == "rpc:figure_digest") rpc = &e;
    if (e.name == "attempt") attempt = &e;
    if (e.name == "server:figure_digest") server = &e;
  }
  ASSERT_NE(rpc, nullptr);
  ASSERT_NE(attempt, nullptr);
  ASSERT_NE(server, nullptr);
  EXPECT_NE(rpc->trace_id, 0u);
  EXPECT_EQ(attempt->trace_id, rpc->trace_id);
  EXPECT_EQ(attempt->parent_span_id, rpc->span_id);
  // The server half of the request carries the client's identity.
  EXPECT_EQ(server->trace_id, rpc->trace_id);
  EXPECT_EQ(server->parent_span_id, attempt->span_id);
}

TEST(SvcServer, ReloadKeepsServingAndStatsReport) {
  svc::Dataset own(world().cfg, &world().dataset->net());
  std::string error;
  ASSERT_TRUE(own.load(error)) << error;
  TestServer ts(own);
  svc::Client client = ts.connect();
  must_call(client, svc::MsgType::kPingEcho, 0, "");
  ts.server().request_reload();
  // The reload happens on the event loop; the next request observes it.
  const std::string stats =
      must_call(client, svc::MsgType::kServerStats, 0, "");
  EXPECT_NE(stats.find("\"type\":\"server_stats\""), std::string::npos);
  EXPECT_NE(stats.find("\"loaded\":true"), std::string::npos) << stats;
  must_call(client, svc::MsgType::kPingEcho, 0, "");
  EXPECT_EQ(ts.server().reloads(), 1u);
}

}  // namespace
}  // namespace s2s
