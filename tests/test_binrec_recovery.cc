// Crash-consistency proofs for `.s2sb` archives (DESIGN.md section 12):
// recover_archive() must turn a file killed at any byte offset into an
// archive byte-identical to what BinRecordWriter would have produced for
// the surviving block prefix — same blocks, same rebuilt footer — and
// AtomicArchiveWriter must never expose a torn file under the final name.
// Runs under ASan/UBSan in CI (the io label).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "io/binrec.h"
#include "stats/rng.h"

namespace s2s {
namespace {

using probe::PingRecord;
using probe::TracerouteRecord;

PingRecord make_ping(stats::Rng& rng, std::int64_t time_s) {
  PingRecord r;
  r.src = static_cast<topology::ServerId>(rng.below(20));
  r.dst = static_cast<topology::ServerId>(rng.below(20));
  r.family = rng.chance(0.5) ? net::Family::kIPv4 : net::Family::kIPv6;
  r.time = net::SimTime(time_s);
  r.success = rng.chance(0.9);
  r.rtt_ms = static_cast<double>(rng.below(2'000'000)) / 1000.0;
  return r;
}

TracerouteRecord make_trace(stats::Rng& rng, std::int64_t time_s) {
  TracerouteRecord r;
  r.src = static_cast<topology::ServerId>(rng.below(20));
  r.dst = static_cast<topology::ServerId>(rng.below(20));
  r.family = net::Family::kIPv4;
  r.time = net::SimTime(time_s);
  r.method = probe::TracerouteMethod::kParis;
  r.src_addr = net::IPv4Addr(static_cast<std::uint32_t>(rng()));
  r.dst_addr = net::IPv4Addr(static_cast<std::uint32_t>(rng()));
  const std::size_t hops = 1 + rng.below(6);
  for (std::size_t h = 0; h < hops; ++h) {
    probe::Hop hop;
    hop.addr = net::IPv4Addr(static_cast<std::uint32_t>(rng()));
    hop.rtt_ms = static_cast<double>(rng.below(500'000)) / 1000.0;
    r.hops.push_back(hop);
  }
  r.complete = true;
  r.hops.back().addr = r.dst_addr;
  return r;
}

/// Single-kind archive, one block per epoch: block k holds exactly the
/// records of epoch k, so every kill offset maps to a unique intended
/// record prefix.
struct PingArchive {
  std::string image;
  std::vector<std::vector<PingRecord>> epochs;
};

PingArchive make_ping_archive(std::uint64_t seed, std::size_t n_epochs,
                              std::size_t per_epoch,
                              bool with_footer = true) {
  PingArchive a;
  stats::Rng rng(seed);
  std::ostringstream out(std::ios::binary);
  io::BinRecordWriter writer(
      out, io::BinWriterConfig{.block_records = 4096,
                               .write_header = true,
                               .write_footer = with_footer});
  for (std::size_t e = 0; e < n_epochs; ++e) {
    a.epochs.emplace_back();
    for (std::size_t i = 0; i < per_epoch; ++i) {
      const auto r = make_ping(rng, static_cast<std::int64_t>(e) * 10'800 +
                                        static_cast<std::int64_t>(i));
      a.epochs.back().push_back(r);
      writer.write(r);
    }
    writer.flush_block();
  }
  writer.finish();
  a.image = out.str();
  return a;
}

/// The archive BinRecordWriter would have produced for the first
/// `n_epochs` epochs — the byte-level ground truth recovery must hit.
std::string reference_prefix_archive(const PingArchive& a,
                                     std::size_t n_epochs) {
  std::ostringstream out(std::ios::binary);
  io::BinRecordWriter writer(out);
  for (std::size_t e = 0; e < n_epochs; ++e) {
    for (const auto& r : a.epochs[e]) writer.write(r);
    writer.flush_block();
  }
  writer.finish();
  return out.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Epochs whose block survives a kill at `cut`: blocks are whole or gone.
std::size_t surviving_epochs(const std::string& image, std::size_t cut) {
  const auto blocks = io::scan_blocks(image.data(), image.size());
  std::size_t n = 0;
  for (const auto& b : *blocks) {
    if (b.payload_offset + b.payload_bytes <= cut) ++n;
  }
  return n;
}

// -- kill-at-random-offset: the tentpole proof ------------------------------

TEST(BinRecRecovery, KillAtRandomOffsetRecoversByteIdenticalStrictPrefix) {
  const auto a = make_ping_archive(/*seed=*/17, /*n_epochs=*/6,
                                   /*per_epoch=*/40);
  const std::string path = ::testing::TempDir() + "/binrec_kill.s2sb";
  stats::Rng rng(4242);
  for (int trial = 0; trial < 10; ++trial) {
    // Kill anywhere after the file header survives: mid-block-header,
    // mid-payload, at a block boundary, or mid-footer.
    const std::size_t cut =
        io::kBinFileHeaderBytes + 1 +
        rng.below(a.image.size() - io::kBinFileHeaderBytes - 1);
    write_file(path, a.image.substr(0, cut));

    const auto res = io::recover_archive(path);
    ASSERT_TRUE(res.ok) << "trial " << trial << " cut " << cut << ": "
                        << res.error;
    EXPECT_TRUE(res.repaired) << "trial " << trial;

    const std::size_t kept = surviving_epochs(a.image, cut);
    ASSERT_EQ(res.blocks_kept, kept) << "trial " << trial << " cut " << cut;
    EXPECT_EQ(res.records_kept, kept * 40);

    // Byte-for-byte what an uninterrupted writer emits for those epochs.
    EXPECT_EQ(read_file(path), reference_prefix_archive(a, kept))
        << "trial " << trial << " cut " << cut;

    // The repaired file ingests clean: sealed footer, nothing skipped.
    std::vector<PingRecord> got;
    const auto ingest = io::ingest_record_file(
        path, [](const TracerouteRecord&) {},
        [&](const PingRecord& r) { got.push_back(r); });
    ASSERT_TRUE(ingest.ok);
    EXPECT_EQ(ingest.footer, io::FooterStatus::kValid);
    EXPECT_EQ(ingest.corrupt_blocks, 0u);
    EXPECT_FALSE(ingest.truncated);
    ASSERT_EQ(got.size(), kept * 40);
    std::size_t i = 0;
    for (std::size_t e = 0; e < kept; ++e) {
      for (const auto& want : a.epochs[e]) {
        EXPECT_EQ(got[i].time.seconds(), want.time.seconds()) << i;
        EXPECT_EQ(got[i].rtt_ms, want.rtt_ms) << i;
        ++i;
      }
    }

    // Idempotence: a second pass finds nothing to fix.
    const auto again = io::recover_archive(path);
    ASSERT_TRUE(again.ok);
    EXPECT_FALSE(again.repaired);
    EXPECT_EQ(again.blocks_kept, kept);
  }
}

TEST(BinRecRecovery, IntactArchiveIsLeftUntouched) {
  const auto a = make_ping_archive(23, 4, 25);
  const std::string path = ::testing::TempDir() + "/binrec_intact.s2sb";
  write_file(path, a.image);
  const auto res = io::recover_archive(path);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_FALSE(res.repaired);
  EXPECT_EQ(res.blocks_kept, 4u);
  EXPECT_EQ(res.bytes_dropped, 0u);
  EXPECT_EQ(read_file(path), a.image);
}

TEST(BinRecRecovery, FooterlessArchiveGainsTheSeal) {
  const auto sealed = make_ping_archive(31, 3, 20, /*with_footer=*/true);
  const auto bare = make_ping_archive(31, 3, 20, /*with_footer=*/false);
  const std::string path = ::testing::TempDir() + "/binrec_bare.s2sb";
  write_file(path, bare.image);
  const auto res = io::recover_archive(path);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_TRUE(res.repaired);
  EXPECT_EQ(res.bytes_dropped, 0u);
  // Sealing a footerless archive reconstructs the full sealed image: the
  // same records through the same writer with write_footer on.
  EXPECT_EQ(read_file(path), sealed.image);
}

TEST(BinRecRecovery, DamagedFooterIsRebuiltExactly) {
  const auto a = make_ping_archive(47, 5, 30);
  const auto blocks = io::scan_blocks(a.image.data(), a.image.size());
  const std::size_t footer_start =
      blocks->back().payload_offset + blocks->back().payload_bytes;
  std::string damaged = a.image;
  damaged[footer_start + 9] ^= 0x5A;  // inside the first index entry
  const std::string path = ::testing::TempDir() + "/binrec_footer.s2sb";
  write_file(path, damaged);
  const auto res = io::recover_archive(path);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_TRUE(res.repaired);
  EXPECT_EQ(res.blocks_kept, 5u);
  EXPECT_EQ(read_file(path), a.image);
}

TEST(BinRecRecovery, CorruptMidArchiveBlockTruncatesToThePrefix) {
  const auto a = make_ping_archive(59, 5, 30);
  const auto blocks = io::scan_blocks(a.image.data(), a.image.size());
  std::string damaged = a.image;
  damaged[(*blocks)[2].payload_offset + 7] ^= 0xFF;  // CRC now fails
  const std::string path = ::testing::TempDir() + "/binrec_midblock.s2sb";
  write_file(path, damaged);
  const auto res = io::recover_archive(path);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_TRUE(res.repaired);
  // Repair keeps the prefix before the damage; blocks past it are gone
  // (prefix semantics, mirroring a torn write).
  EXPECT_EQ(res.blocks_kept, 2u);
  EXPECT_EQ(read_file(path), reference_prefix_archive(a, 2));
}

TEST(BinRecRecovery, MixedKindArchiveRecoversAtBlockGranularity) {
  // Two blocks per epoch (traceroute then ping — flush_block order), so a
  // kill can strand a half epoch: the traceroute block survives, the ping
  // block does not.
  stats::Rng rng(71);
  std::vector<std::vector<TracerouteRecord>> traces(3);
  std::vector<std::vector<PingRecord>> pings(3);
  std::ostringstream out(std::ios::binary);
  io::BinRecordWriter writer(out);
  for (std::size_t e = 0; e < 3; ++e) {
    for (std::size_t i = 0; i < 10; ++i) {
      const auto t =
          make_trace(rng, static_cast<std::int64_t>(e * 10'800 + i));
      traces[e].push_back(t);
      writer.write(t);
      const auto p =
          make_ping(rng, static_cast<std::int64_t>(e * 10'800 + i));
      pings[e].push_back(p);
      writer.write(p);
    }
    writer.flush_block();
  }
  writer.finish();
  const std::string image = out.str();

  const auto blocks = io::scan_blocks(image.data(), image.size());
  ASSERT_EQ(blocks->size(), 6u);
  // Cut inside epoch 1's ping block: keeps e0 trace, e0 ping, e1 trace.
  const std::size_t cut = (*blocks)[3].payload_offset + 5;
  const std::string path = ::testing::TempDir() + "/binrec_mixed.s2sb";
  write_file(path, image.substr(0, cut));
  const auto res = io::recover_archive(path);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.blocks_kept, 3u);

  std::ostringstream ref_out(std::ios::binary);
  io::BinRecordWriter ref(ref_out);
  for (std::size_t i = 0; i < 10; ++i) {
    ref.write(traces[0][i]);
    ref.write(pings[0][i]);
  }
  ref.flush_block();
  for (const auto& t : traces[1]) ref.write(t);
  ref.flush_block();
  ref.finish();
  EXPECT_EQ(read_file(path), ref_out.str());
}

TEST(BinRecRecovery, KillInsideTheFileHeaderIsUnrecoverable) {
  const auto a = make_ping_archive(83, 2, 10);
  const std::string path = ::testing::TempDir() + "/binrec_headless.s2sb";
  write_file(path, a.image.substr(0, io::kBinFileHeaderBytes - 3));
  const auto res = io::recover_archive(path);
  EXPECT_FALSE(res.ok);
  EXPECT_FALSE(res.error.empty());
}

// -- AtomicArchiveWriter ----------------------------------------------------

TEST(AtomicArchiveWriter, AbortLeavesTheTargetAndRemovesTheTmp) {
  const std::string path = ::testing::TempDir() + "/atomic_abort.s2sb";
  write_file(path, "previous contents");
  {
    io::AtomicArchiveWriter w(path);
    ASSERT_TRUE(w.ok()) << w.error();
    w.stream() << "half-written replacement";
    // No commit: destructor aborts.
  }
  EXPECT_EQ(read_file(path), "previous contents");
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
}

TEST(AtomicArchiveWriter, CommitReplacesAtomicallyAndIsIdempotent) {
  const std::string path = ::testing::TempDir() + "/atomic_commit.s2sb";
  write_file(path, "old");
  io::AtomicArchiveWriter w(path);
  ASSERT_TRUE(w.ok()) << w.error();
  w.stream() << "new bytes";
  // Until commit, the target still serves the old bytes.
  EXPECT_EQ(read_file(path), "old");
  std::string error;
  ASSERT_TRUE(w.commit(error)) << error;
  EXPECT_EQ(read_file(path), "new bytes");
  ASSERT_TRUE(w.commit(error)) << error;  // second commit is a no-op
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
}

}  // namespace
}  // namespace s2s
