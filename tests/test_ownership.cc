#include "core/ownership.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/link_classify.h"

namespace s2s::core {
namespace {

using net::Asn;
using net::IPAddr;
using net::IPv4Addr;

// Address helper: 10.<as>.<host> style, AS x announces 10.x.0.0/16.
IPAddr in_as(int as, int host) {
  return IPAddr(IPv4Addr(10, static_cast<std::uint8_t>(as), 0,
                         static_cast<std::uint8_t>(host)));
}

class OwnershipFixture : public ::testing::Test {
 protected:
  OwnershipFixture() {
    for (int as : {1, 2, 3, 4, 5}) {
      rib_.insert(net::Prefix4(IPv4Addr(10, static_cast<std::uint8_t>(as), 0, 0), 16),
                  Asn(static_cast<std::uint32_t>(as)));
    }
    rels_.add(Asn(2), Asn(1), bgp::Rel::kCustomer);  // AS2 customer of AS1
    rels_.add(Asn(1), Asn(3), bgp::Rel::kPeer);
  }

  bgp::Rib rib_;
  bgp::RelationshipTable rels_;
};

TEST_F(OwnershipFixture, FirstHeuristicLabelsEarlierHop) {
  OwnershipInference inference(rib_, rels_);
  const std::vector<IPAddr> path{in_as(1, 1), in_as(1, 2), in_as(3, 1)};
  inference.observe_path(path);
  inference.finalize();
  EXPECT_EQ(inference.owner(in_as(1, 1)), Asn(1));
  EXPECT_GT(inference.stats().labels_first, 0u);
}

TEST_F(OwnershipFixture, CustomerHeuristic) {
  // IPx, IPy announced by AS1, IPz by AS2, AS2 customer of AS1:
  // IPy sits on AS2's border router (provider-assigned space).
  OwnershipInference inference(rib_, rels_);
  const std::vector<IPAddr> path{in_as(1, 1), in_as(1, 2), in_as(2, 1)};
  inference.observe_path(path);
  inference.finalize();
  EXPECT_GT(inference.stats().labels_customer, 0u);
  // IPy has candidates {AS1 via first, AS2 via customer}; the most
  // frequent label is `first`, so the election keeps AS1... unless only
  // one heuristic fired. Verify at least that AS2 was a candidate by
  // checking the stats; the elected owner must be defined.
  EXPECT_TRUE(inference.owner(in_as(1, 2)).has_value());
}

TEST_F(OwnershipFixture, ProviderHeuristic) {
  // IPx in AS2 (customer), IPy in AS1 (provider of AS2): IPy is on the
  // provider's customer-facing router.
  OwnershipInference inference(rib_, rels_);
  const std::vector<IPAddr> path{in_as(2, 5), in_as(1, 9)};
  inference.observe_path(path);
  inference.finalize();
  EXPECT_GT(inference.stats().labels_provider, 0u);
  EXPECT_EQ(inference.owner(in_as(1, 9)), Asn(1));
}

TEST_F(OwnershipFixture, NoIp2AsHeuristic) {
  OwnershipInference inference(rib_, rels_);
  const IPAddr unmapped(IPv4Addr(172, 16, 0, 1));
  const std::vector<IPAddr> path{in_as(1, 1), unmapped, in_as(1, 2)};
  inference.observe_path(path);
  inference.finalize();
  EXPECT_GT(inference.stats().labels_noip2as, 0u);
  EXPECT_EQ(inference.owner(unmapped), Asn(1));
}

TEST_F(OwnershipFixture, BackHeuristicPropagates) {
  OwnershipInference inference(rib_, rels_);
  // x1, x2 get `first` labels for AS1 on links into y; x3 (also AS1
  // space) is seen only as the tail of a path, so no pair labels it.
  inference.observe_path(std::vector<IPAddr>{in_as(1, 11), in_as(1, 77)});
  inference.observe_path(std::vector<IPAddr>{in_as(1, 12), in_as(1, 77)});
  inference.observe_path(std::vector<IPAddr>{in_as(5, 1), in_as(1, 13), in_as(1, 77)});
  // in_as(1,13) got a label from its own pair (1,13)->(1,77). Use a colder
  // x3: a hop whose only appearance is x3 -> y with y unmapped... instead
  // verify the mechanism with an x3 whose outgoing pair heuristic cannot
  // fire because the next hop maps to a different AS with no relationship.
  inference.observe_path(std::vector<IPAddr>{in_as(4, 3), in_as(1, 77)});
  inference.finalize();
  // x3 = in_as(4,3): mapped to AS4, so `first` cannot fire (next hop AS1),
  // no relationship between AS4 and AS1 -> provider heuristic silent.
  // back requires ASi (=AS1) to announce x3 -> AS4 != AS1, so x3 stays
  // unlabeled. This asserts back does NOT overreach.
  EXPECT_FALSE(inference.owner(in_as(4, 3)).has_value());
  EXPECT_GT(inference.stats().labels_first, 0u);
}

TEST_F(OwnershipFixture, ForwardHeuristicLabelsFanOut) {
  OwnershipInference inference(rib_, rels_);
  const IPAddr unmapped(IPv4Addr(172, 16, 9, 9));
  // y1, y2 in AS3 get labels via `first` (their own outgoing pairs).
  inference.observe_path(std::vector<IPAddr>{unmapped, in_as(3, 1), in_as(3, 100)});
  inference.observe_path(std::vector<IPAddr>{unmapped, in_as(3, 2), in_as(3, 100)});
  inference.finalize();
  // unmapped has out-links to y1, y2, both mapped to AS3 and labeled.
  EXPECT_GT(inference.stats().labels_forward, 0u);
  EXPECT_EQ(inference.owner(unmapped), Asn(3));
}

TEST_F(OwnershipFixture, ElectionPrefersFirstOnConflict) {
  OwnershipInference inference(rib_, rels_);
  // in_as(1,2) receives `first` (AS1) twice via two different next hops
  // inside AS1, and `customer` (AS2) once.
  inference.observe_path(std::vector<IPAddr>{in_as(1, 1), in_as(1, 2), in_as(2, 1)});
  inference.observe_path(std::vector<IPAddr>{in_as(1, 2), in_as(1, 50)});
  inference.finalize();
  EXPECT_EQ(inference.owner(in_as(1, 2)), Asn(1));
}

TEST(IxpDirectory, MatchesPrefixes) {
  IxpDirectory dir;
  dir.add(*net::Prefix4::parse("176.0.0.0/16"));
  dir.add(*net::Prefix6::parse("2001:7f8::/48"));
  EXPECT_TRUE(dir.contains(*net::IPAddr::parse("176.0.1.2")));
  EXPECT_FALSE(dir.contains(*net::IPAddr::parse("176.1.0.1")));
  EXPECT_TRUE(dir.contains(*net::IPAddr::parse("2001:7f8::5")));
  EXPECT_FALSE(dir.contains(*net::IPAddr::parse("2001:7f9::5")));
}

class ClassifyFixture : public OwnershipFixture {
 protected:
  ClassifyFixture() {
    inference_ = std::make_unique<OwnershipInference>(rib_, rels_);
    // Build owners: AS1 internal pair, AS1->AS2 c2p link, AS1->AS3 p2p.
    inference_->observe_path(std::vector<IPAddr>{in_as(1, 1), in_as(1, 2), in_as(1, 3)});
    inference_->observe_path(std::vector<IPAddr>{in_as(2, 5), in_as(1, 9)});   // provider label
    inference_->observe_path(std::vector<IPAddr>{in_as(3, 5), in_as(3, 6)});   // first label
    inference_->finalize();
    ixps_.add(*net::Prefix4::parse("176.0.0.0/16"));
    classifier_ = std::make_unique<LinkClassifier>(*inference_, rels_, ixps_);
  }
  std::unique_ptr<OwnershipInference> inference_;
  IxpDirectory ixps_;
  std::unique_ptr<LinkClassifier> classifier_;
};

TEST_F(ClassifyFixture, InternalLink) {
  const auto cls = classifier_->classify(in_as(1, 1), in_as(1, 2));
  EXPECT_EQ(cls.kind, LinkKind::kInternal);
}

TEST_F(ClassifyFixture, InterconnectionC2p) {
  // near owned by AS3 (peer of AS1)? Use AS3->AS1 pair: owner(in_as(3,5))
  // = AS3 via first; owner(in_as(1,9)) = AS1 via provider.
  const auto cls = classifier_->classify(in_as(3, 5), in_as(1, 9));
  EXPECT_EQ(cls.kind, LinkKind::kInterconnection);
  EXPECT_EQ(cls.rel, InterconnRel::kP2P);  // AS3-AS1 are peers
}

TEST_F(ClassifyFixture, UnknownWithoutOwners) {
  const auto cls = classifier_->classify(std::nullopt, in_as(1, 1));
  EXPECT_EQ(cls.kind, LinkKind::kUnknown);
  const auto cls2 =
      classifier_->classify(in_as(4, 1), in_as(5, 1));  // never observed
  EXPECT_EQ(cls2.kind, LinkKind::kUnknown);
}

}  // namespace
}  // namespace s2s::core
