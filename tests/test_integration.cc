// End-to-end integration: a scaled-down version of the paper's pipelines
// running against the simulator, asserting the qualitative findings.
#include <gtest/gtest.h>

#include "core/congestion_detect.h"
#include "core/dualstack.h"
#include "core/routing_study.h"
#include "probe/campaign.h"
#include "stats/ecdf.h"

namespace s2s {
namespace {

using topology::ServerId;

class IntegrationFixture : public ::testing::Test {
 protected:
  static simnet::NetworkConfig config() {
    simnet::NetworkConfig cfg;
    cfg.topology.seed = 2024;
    cfg.topology.tier1_count = 6;
    cfg.topology.transit_count = 30;
    cfg.topology.stub_count = 100;
    cfg.topology.server_count = 30;
    return cfg;
  }
};

TEST_F(IntegrationFixture, LongTermPipelineProducesPaperShapedData) {
  simnet::Network net(config());
  const auto& topo = net.topo();
  std::vector<std::pair<ServerId, ServerId>> pairs;
  for (ServerId a = 0; a < topo.servers.size(); ++a) {
    for (ServerId b = a + 1; b < topo.servers.size(); ++b) {
      if (topo.servers[a].dual_stack() && topo.servers[b].dual_stack()) {
        pairs.emplace_back(a, b);
      }
    }
  }
  ASSERT_GT(pairs.size(), 100u);

  probe::TracerouteCampaignConfig campaign_cfg;
  campaign_cfg.days = 40.0;
  probe::TracerouteCampaign campaign(net, campaign_cfg, pairs);
  core::TimelineStore store(topo, net.rib(), {0.0, net::kThreeHours});
  campaign.run([&](const probe::TracerouteRecord& r) { store.add(r); });

  const auto& t1 = store.table1();
  // Completion and data-quality bands around the paper's Table 1.
  const double complete_frac =
      static_cast<double>(t1.v4.complete) / t1.v4.collected;
  EXPECT_GT(complete_frac, 0.6);
  EXPECT_LT(complete_frac, 0.95);
  const double analyzed =
      static_cast<double>(t1.v4.complete_as + t1.v4.missing_as +
                          t1.v4.missing_ip);
  EXPECT_GT(t1.v4.complete_as / analyzed, 0.45);
  EXPECT_GT(t1.v4.missing_ip / analyzed, 0.10);
  // Classic IPv6 shows more AS-path loops than (eventually Paris) IPv4.
  const double loop4 = static_cast<double>(t1.v4.as_loops) / t1.v4.complete;
  const double loop6 = static_cast<double>(t1.v6.as_loops) / t1.v6.complete;
  EXPECT_LT(loop4, 0.06);
  EXPECT_GT(loop6, loop4);

  core::RoutingStudyConfig study_cfg;
  study_cfg.min_observations = 100;
  const auto study = core::run_routing_study(store, study_cfg);
  ASSERT_GT(study.v4.timelines, 100u);
  // Most timelines fluctuate among a handful of AS paths.
  const stats::Ecdf unique_paths(study.v4.unique_paths);
  EXPECT_LE(unique_paths.quantile(0.8), 8.0);
  // Most popular path dominates for the majority of timelines.
  const stats::Ecdf prevalence(study.v4.popular_prevalence);
  EXPECT_GT(prevalence.quantile(0.5), 0.5);

  // Dual-stack: RTTs over the two protocols are broadly similar.
  const auto dual = core::run_dualstack_study(store);
  ASSERT_GT(dual.samples_matched, 1000u);
  const double similar =
      dual.diff_all.at(10.0) - dual.diff_all.at(-10.0);
  EXPECT_GT(similar, 0.25);
}

TEST_F(IntegrationFixture, DeterministicAcrossRuns) {
  auto run_once = [&]() {
    simnet::Network net(config());
    std::vector<std::pair<ServerId, ServerId>> pairs{{0, 5}, {3, 9}, {2, 7}};
    probe::TracerouteCampaignConfig cfg;
    cfg.days = 5.0;
    probe::TracerouteCampaign campaign(net, cfg, pairs);
    core::TimelineStore store(net.topo(), net.rib(), {0.0, net::kThreeHours});
    campaign.run([&](const probe::TracerouteRecord& r) { store.add(r); });
    return store.table1().v4.complete_as * 1000000 +
           store.table1().v4.missing_ip * 1000 + store.table1().v6.complete;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_F(IntegrationFixture, CongestionSurveyFlagsMinority) {
  simnet::Network net(config());
  const auto& topo = net.topo();
  std::vector<std::pair<ServerId, ServerId>> pairs;
  for (ServerId a = 0; a < topo.servers.size(); ++a) {
    for (ServerId b = a + 1; b < topo.servers.size(); ++b) {
      pairs.emplace_back(a, b);
    }
  }
  probe::PingCampaignConfig cfg;
  cfg.start_day = 0.0;
  cfg.days = 7.0;
  probe::PingCampaign campaign(net, cfg, pairs);
  core::PingSeriesStore store(0.0, net::kFifteenMinutes, campaign.epochs());
  campaign.run([&](const probe::PingRecord& r) { store.add(r); });

  const auto survey = core::survey_congestion(store);
  ASSERT_GT(survey.v4.pairs_assessed, 200u);
  // Consistent congestion is not the norm in the core (paper 5.1).
  EXPECT_LT(static_cast<double>(survey.v4.consistent) /
                survey.v4.pairs_assessed,
            0.15);
}

}  // namespace
}  // namespace s2s
