// End-to-end fault tolerance for the serving path (DESIGN.md section 12):
// a seeded faultsim::ChaosProxy sits between a RetryingClient and a live
// server, and every fault class must (a) converge to responses
// byte-identical to a fault-free run, (b) never crash the daemon, and
// (c) reconcile exactly — the faults the proxy injected equal the failed
// attempts the client counted, fault by fault, because both sides draw
// from seeded deterministic streams. Overload tests hold the server's
// cost-based admission control to the same exactness standard, and the
// startup suite proves the archive-health diagnostic catches what
// recover_archive() then fixes.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exec/pool.h"
#include "faultsim/chaos_proxy.h"
#include "io/binrec.h"
#include "obs/metrics.h"
#include "svc/client.h"
#include "svc/dataset.h"
#include "svc/protocol.h"
#include "svc/retry_client.h"
#include "svc/server.h"

namespace s2s {
namespace {

svc::FixtureParams fast_fixture_params() {
  svc::FixtureParams params;
  params.trace_days = 7.0;
  params.ping_days = 3.0;
  params.max_trace_pairs = 6;
  params.max_ping_pairs = 24;
  return params;
}

struct ChaosWorld {
  svc::DatasetConfig cfg;
  std::unique_ptr<svc::Dataset> dataset;
};

ChaosWorld& world() {
  static ChaosWorld* w = [] {
    auto* world = new ChaosWorld;
    world->cfg.archive_path = ::testing::TempDir() + "s2s_test_chaos_" +
                              std::to_string(::getpid()) + ".s2sb";
    std::string error;
    if (!svc::write_fixture_archive(world->cfg.archive_path, world->cfg,
                                    fast_fixture_params(), error)) {
      ADD_FAILURE() << "fixture write failed: " << error;
    }
    world->dataset = std::make_unique<svc::Dataset>(world->cfg);
    if (!world->dataset->load(error)) {
      ADD_FAILURE() << "fixture load failed: " << error;
    }
    return world;
  }();
  return *w;
}

class TestServer {
 public:
  explicit TestServer(svc::Dataset& dataset, unsigned threads = 2,
                      svc::ServerConfig cfg = {})
      : pool_(threads), server_(dataset, &pool_, cfg) {
    std::string error;
    if (!server_.start(error)) {
      ADD_FAILURE() << "server start failed: " << error;
      return;
    }
    thread_ = std::thread([this] { server_.serve(); });
  }

  ~TestServer() { drain(); }

  void drain() {
    if (thread_.joinable()) {
      server_.request_drain();
      thread_.join();
    }
  }

  svc::Server& server() { return server_; }
  std::uint16_t port() const { return server_.port(); }

 private:
  exec::ThreadPool pool_;
  svc::Server server_;
  std::thread thread_;
};

/// The mixed read-only workload every chaos run replays: small frames
/// (ping, pair queries) plus the heavyweight figure digests.
std::vector<std::pair<svc::MsgType, std::string>> chaos_workload(
    bool small_frames_only = false) {
  const auto pairs = world().dataset->trace_pairs();
  EXPECT_FALSE(pairs.empty());
  svc::PairQuery q;
  q.src = pairs.front().src;
  q.dst = pairs.front().dst;
  q.family = pairs.front().family;
  std::vector<std::pair<svc::MsgType, std::string>> out;
  for (int round = 0; round < 4; ++round) {
    out.emplace_back(svc::MsgType::kPingEcho, "");
    out.emplace_back(svc::MsgType::kPairRtt, svc::encode_pair_query(q));
    out.emplace_back(svc::MsgType::kPathPrevalence,
                     svc::encode_pair_query(q));
    if (small_frames_only) continue;
    out.emplace_back(svc::MsgType::kCongestionVerdict,
                     svc::encode_pair_query(q));
    svc::FigureQuery f;
    f.figure = round < 2 ? 1 : 2;
    out.emplace_back(svc::MsgType::kFigureDigest, svc::encode_figure_query(f));
  }
  return out;
}

/// Fault-free ground truth, collected over a direct connection.
std::vector<std::string> baseline_responses(
    TestServer& ts,
    const std::vector<std::pair<svc::MsgType, std::string>>& workload) {
  svc::Client client;
  std::string error;
  EXPECT_TRUE(client.connect("127.0.0.1", ts.port(), error)) << error;
  std::vector<std::string> out;
  for (const auto& [type, payload] : workload) {
    svc::MsgType rtype;
    std::string rpayload;
    EXPECT_TRUE(client.call(type, 0, payload, &rtype, &rpayload, error))
        << error;
    EXPECT_EQ(rtype, svc::MsgType::kOk) << rpayload;
    out.push_back(rpayload);
  }
  return out;
}

struct ChaosOutcome {
  std::vector<std::string> responses;
  svc::RetryStats retry;
  faultsim::ChaosStats chaos;
};

/// Replays the workload through a chaos proxy with a retrying client;
/// every call must converge to an kOk response despite the faults.
ChaosOutcome run_through_chaos(
    TestServer& ts, faultsim::ChaosConfig ccfg, svc::RetryPolicy policy,
    const std::vector<std::pair<svc::MsgType, std::string>>& workload) {
  ChaosOutcome out;
  ccfg.upstream_port = ts.port();
  faultsim::ChaosProxy proxy(ccfg);
  std::string error;
  EXPECT_TRUE(proxy.start(error)) << error;
  svc::RetryingClient client("127.0.0.1", proxy.port(), policy);
  for (const auto& [type, payload] : workload) {
    svc::MsgType rtype;
    std::string rpayload;
    const bool ok = client.call(type, 0, payload, &rtype, &rpayload, error);
    EXPECT_TRUE(ok) << svc::type_name(type) << ": " << error;
    if (!ok) break;
    EXPECT_EQ(rtype, svc::MsgType::kOk) << rpayload;
    out.responses.push_back(rpayload);
  }
  out.retry = client.stats();
  proxy.stop();
  out.chaos = proxy.stats();
  return out;
}

svc::RetryPolicy chaos_policy(int timeout_ms = 2000) {
  svc::RetryPolicy policy;
  policy.timeout_ms = timeout_ms;
  policy.max_retries = 12;
  policy.backoff_base_ms = 1;
  policy.backoff_cap_ms = 20;
  return policy;
}

std::uint64_t global_counter(const std::string& name) {
  const auto snapshot = obs::MetricsRegistry::global().snapshot();
  const auto it = snapshot.counters.find(name);
  return it == snapshot.counters.end() ? 0 : it->second;
}

// ---------------------------------------------------------------------------
// Fault classes, one at a time: byte identity + exact reconciliation.
// ---------------------------------------------------------------------------

TEST(ChaosSvc, LatencyJitterAndBandwidthAreLossless) {
  TestServer ts(*world().dataset);
  const auto workload = chaos_workload();
  const auto want = baseline_responses(ts, workload);
  faultsim::ChaosConfig ccfg;
  ccfg.seed = 101;
  ccfg.latency_ms = 3;
  ccfg.jitter_ms = 4;
  ccfg.bytes_per_sec = 400'000;
  const auto got = run_through_chaos(ts, ccfg, chaos_policy(), workload);
  EXPECT_EQ(got.responses, want);
  // Pure delay injects zero failures: nothing to retry, only waiting.
  EXPECT_EQ(got.retry.failed_attempts, 0u);
  EXPECT_EQ(got.retry.retries, 0u);
  EXPECT_EQ(got.chaos.failure_faults(), 0u);
  EXPECT_GT(got.chaos.delayed_chunks, 0u);
}

TEST(ChaosSvc, ConnectionResetsReconcileExactly) {
  TestServer ts(*world().dataset);
  const auto workload = chaos_workload();
  const auto want = baseline_responses(ts, workload);
  faultsim::ChaosConfig ccfg;
  ccfg.seed = 202;
  ccfg.reset_prob = 0.06;
  const auto got = run_through_chaos(ts, ccfg, chaos_policy(), workload);
  EXPECT_EQ(got.responses, want);
  // Every injected reset kills exactly one attempt, and nothing else
  // does: injected == observed, not merely "some failures happened".
  EXPECT_GT(got.chaos.resets, 0u) << "seed injected nothing; bump probs";
  EXPECT_EQ(got.retry.failed_attempts, got.chaos.resets);
  EXPECT_EQ(got.retry.timeouts, 0u);
  EXPECT_EQ(got.retry.reconnects, got.chaos.resets);
}

TEST(ChaosSvc, MidFrameTruncationReconcilesExactly) {
  TestServer ts(*world().dataset);
  const auto workload = chaos_workload();
  const auto want = baseline_responses(ts, workload);
  faultsim::ChaosConfig ccfg;
  ccfg.seed = 303;
  ccfg.truncate_prob = 0.06;
  const auto got = run_through_chaos(ts, ccfg, chaos_policy(), workload);
  EXPECT_EQ(got.responses, want);
  EXPECT_GT(got.chaos.truncated, 0u) << "seed injected nothing; bump probs";
  EXPECT_EQ(got.retry.failed_attempts, got.chaos.truncated);
}

TEST(ChaosSvc, HalfOpenStallsTimeOutAndReconcileExactly) {
  TestServer ts(*world().dataset);
  const auto workload = chaos_workload(/*small_frames_only=*/true);
  const auto want = baseline_responses(ts, workload);
  faultsim::ChaosConfig ccfg;
  ccfg.seed = 404;
  ccfg.stall_prob = 0.05;
  const auto got = run_through_chaos(ts, ccfg, chaos_policy(250), workload);
  EXPECT_EQ(got.responses, want);
  EXPECT_GT(got.chaos.stalls, 0u) << "seed injected nothing; bump probs";
  // A half-open stall is only observable as a deadline expiry, so the
  // timeout counter must reconcile too.
  EXPECT_EQ(got.retry.failed_attempts, got.chaos.stalls);
  EXPECT_EQ(got.retry.timeouts, got.chaos.stalls);
}

TEST(ChaosSvc, ByteCorruptionReconcilesExactly) {
  TestServer ts(*world().dataset);
  // Small frames only: one frame = one forwarded chunk, so one corrupted
  // chunk = one failed attempt (either the server's bad_crc error frame
  // or a client-side checksum mismatch).
  const auto workload = chaos_workload(/*small_frames_only=*/true);
  const auto want = baseline_responses(ts, workload);
  faultsim::ChaosConfig ccfg;
  ccfg.seed = 505;
  ccfg.corrupt_prob = 0.07;
  // Short per-attempt deadline: a corrupted length field shifts the
  // frame boundary and the server waits for a phantom payload, so that
  // flavor of corruption surfaces as a timeout.
  const auto got = run_through_chaos(ts, ccfg, chaos_policy(300), workload);
  EXPECT_EQ(got.responses, want);
  EXPECT_GT(got.chaos.corrupted, 0u) << "seed injected nothing; bump probs";
  EXPECT_EQ(got.retry.failed_attempts, got.chaos.corrupted);
}

TEST(ChaosSvc, AcceptBlackoutReconnectStormIsCountedExactly) {
  TestServer ts(*world().dataset);
  faultsim::ChaosConfig ccfg;
  ccfg.seed = 606;
  ccfg.upstream_port = ts.port();
  ccfg.blackout_first_conns = 3;
  faultsim::ChaosProxy proxy(ccfg);
  std::string error;
  ASSERT_TRUE(proxy.start(error)) << error;
  svc::RetryingClient client("127.0.0.1", proxy.port(), chaos_policy());
  svc::MsgType rtype;
  std::string rpayload;
  ASSERT_TRUE(client.call(svc::MsgType::kPingEcho, 0, "", &rtype, &rpayload,
                          error))
      << error;
  EXPECT_EQ(rtype, svc::MsgType::kOk);
  proxy.stop();
  EXPECT_EQ(proxy.stats().blackouts, 3u);
  EXPECT_EQ(client.stats().failed_attempts, 3u);
  EXPECT_EQ(client.stats().reconnects, 3u);
  EXPECT_EQ(client.stats().attempts, 4u);
}

TEST(ChaosSvc, MixedFaultSoupConvergesByteIdentical) {
  TestServer ts(*world().dataset);
  const auto workload = chaos_workload(/*small_frames_only=*/true);
  const auto want = baseline_responses(ts, workload);
  faultsim::ChaosConfig ccfg;
  ccfg.seed = 707;
  ccfg.latency_ms = 1;
  ccfg.jitter_ms = 2;
  ccfg.reset_prob = 0.02;
  ccfg.truncate_prob = 0.02;
  ccfg.stall_prob = 0.02;
  ccfg.corrupt_prob = 0.02;
  const auto got = run_through_chaos(ts, ccfg, chaos_policy(250), workload);
  EXPECT_EQ(got.responses, want);
  EXPECT_GT(got.chaos.failure_faults() + got.chaos.corrupted, 0u);
  EXPECT_EQ(got.retry.failed_attempts,
            got.chaos.failure_faults() + got.chaos.corrupted);
}

TEST(ChaosSvc, MultiReactorFaultSoupConvergesByteIdentical) {
  // The fault soup against a 4-reactor tier over the handoff fallback
  // (deterministic sharding): every reconnect may land on a different
  // reactor with a cold cache, and identity must hold anyway.
  svc::ServerConfig cfg;
  cfg.reactors = 4;
  cfg.use_reuseport = false;
  TestServer ts(*world().dataset, 2, cfg);
  const auto workload = chaos_workload(/*small_frames_only=*/true);
  const auto want = baseline_responses(ts, workload);
  faultsim::ChaosConfig ccfg;
  ccfg.seed = 1001;
  ccfg.reset_prob = 0.03;
  ccfg.truncate_prob = 0.03;
  const auto got = run_through_chaos(ts, ccfg, chaos_policy(), workload);
  EXPECT_EQ(got.responses, want);
  EXPECT_EQ(got.retry.failed_attempts,
            got.chaos.resets + got.chaos.truncated);
  ts.drain();
  EXPECT_GT(ts.server().requests_served(), 0u);
}

TEST(ChaosSvc, PollBackendSurvivesTruncationAndResets) {
  svc::ServerConfig cfg;
  cfg.use_epoll = false;
  TestServer ts(*world().dataset, 2, cfg);
  const auto workload = chaos_workload();
  const auto want = baseline_responses(ts, workload);
  faultsim::ChaosConfig ccfg;
  ccfg.seed = 808;
  ccfg.truncate_prob = 0.04;
  ccfg.reset_prob = 0.04;
  const auto got = run_through_chaos(ts, ccfg, chaos_policy(), workload);
  EXPECT_EQ(got.responses, want);
  EXPECT_GT(got.chaos.truncated + got.chaos.resets, 0u);
  EXPECT_EQ(got.retry.failed_attempts,
            got.chaos.truncated + got.chaos.resets);
  ts.drain();
  EXPECT_GT(ts.server().requests_served(), 0u);
}

TEST(ChaosSvc, HedgeWinsWhenThePrimaryConnectionStalls) {
  TestServer ts(*world().dataset);
  faultsim::ChaosConfig ccfg;
  ccfg.seed = 909;
  ccfg.upstream_port = ts.port();
  ccfg.stall_first_conns = 1;
  faultsim::ChaosProxy proxy(ccfg);
  std::string error;
  ASSERT_TRUE(proxy.start(error)) << error;
  svc::RetryPolicy policy;
  policy.timeout_ms = 3000;
  policy.max_retries = 0;
  policy.hedge = true;
  policy.hedge_delay_ms = 50;
  svc::RetryingClient client("127.0.0.1", proxy.port(), policy);
  svc::MsgType rtype;
  std::string rpayload;
  ASSERT_TRUE(client.call(svc::MsgType::kPingEcho, 0, "", &rtype, &rpayload,
                          error))
      << error;
  EXPECT_EQ(rtype, svc::MsgType::kOk);
  proxy.stop();
  EXPECT_EQ(client.stats().hedges, 1u);
  EXPECT_EQ(client.stats().hedge_wins, 1u);
  // The stalled primary never failed — the hedge raced past it.
  EXPECT_EQ(client.stats().failed_attempts, 0u);
  EXPECT_EQ(client.stats().giveups, 0u);
}

// ---------------------------------------------------------------------------
// Overload control: ordered sheds, exact counts, honored hints.
// ---------------------------------------------------------------------------

/// Pipelines `frames` on one raw connection and returns the responses in
/// arrival order.
std::vector<std::pair<svc::MsgType, std::string>> pipeline_raw(
    std::uint16_t port, const std::string& frames, int count) {
  svc::Client raw;
  std::string error;
  EXPECT_TRUE(raw.connect("127.0.0.1", port, error)) << error;
  EXPECT_TRUE(raw.send_bytes(frames, error)) << error;
  std::vector<std::pair<svc::MsgType, std::string>> out;
  for (int i = 0; i < count; ++i) {
    svc::MsgType rtype;
    std::string rpayload;
    EXPECT_TRUE(raw.read_frame(&rtype, &rpayload, error)) << error;
    out.emplace_back(rtype, rpayload);
  }
  return out;
}

TEST(SvcOverload, BusyShedsArriveInRequestOrderWithHints) {
  // Regression for the DESIGN.md section 11 caveat: busy responses used
  // to be emitted ahead of the admitted request's response; they must
  // arrive in request order, each carrying a retry-after hint.
  svc::ServerConfig cfg;
  cfg.max_inflight = 1;
  cfg.busy_retry_after_ms = 25;
  const std::uint64_t shed_before = global_counter("s2s.svc.shed.inflight");
  TestServer ts(*world().dataset, 2, cfg);
  std::string batch;
  for (int i = 0; i < 8; ++i) {
    batch += svc::encode_frame(svc::MsgType::kPingEcho, 0, "");
  }
  const auto responses = pipeline_raw(ts.port(), batch, 8);
  ASSERT_EQ(responses.size(), 8u);
  // Request 1 was admitted; its kOk leads. Requests 2..8 were shed; their
  // busy frames follow in order, never jumping the queue.
  EXPECT_EQ(responses[0].first, svc::MsgType::kOk) << responses[0].second;
  for (int i = 1; i < 8; ++i) {
    EXPECT_EQ(responses[i].first, svc::MsgType::kError) << i;
    const auto info = svc::parse_error_payload(responses[i].second);
    EXPECT_EQ(info.code, "busy") << responses[i].second;
    EXPECT_GE(info.retry_after_ms, cfg.busy_retry_after_ms)
        << responses[i].second;
  }
  ts.drain();
  EXPECT_EQ(global_counter("s2s.svc.shed.inflight") - shed_before, 7u);
}

TEST(SvcOverload, CostBudgetShedsExpensiveWorkButAdmitsCheap) {
  svc::ServerConfig cfg;
  cfg.max_inflight = 64;
  cfg.max_pending_cost = svc::request_cost(svc::MsgType::kFigureDigest) + 2;
  const std::uint64_t shed_before = global_counter("s2s.svc.shed.cost");
  TestServer ts(*world().dataset, 2, cfg);
  svc::FigureQuery f;
  f.figure = 1;
  const std::string fig =
      svc::encode_frame(svc::MsgType::kFigureDigest, 0,
                        svc::encode_figure_query(f));
  const std::string ping = svc::encode_frame(svc::MsgType::kPingEcho, 0, "");
  // figure(admitted: empty queue always makes progress), figure(shed:
  // budget exhausted), figure(shed), ping(admitted: cost 1 still fits).
  const auto responses = pipeline_raw(ts.port(), fig + fig + fig + ping, 4);
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_EQ(responses[0].first, svc::MsgType::kOk) << responses[0].second;
  EXPECT_EQ(svc::parse_error_payload(responses[1].second).code, "busy");
  EXPECT_EQ(svc::parse_error_payload(responses[2].second).code, "busy");
  EXPECT_EQ(responses[3].first, svc::MsgType::kOk) << responses[3].second;
  ts.drain();
  EXPECT_EQ(global_counter("s2s.svc.shed.cost") - shed_before, 2u);
}

TEST(SvcOverload, PerClientQueueBoundShedsTheExcess) {
  svc::ServerConfig cfg;
  cfg.max_inflight = 1000;
  cfg.max_client_pending = 2;
  const std::uint64_t shed_before = global_counter("s2s.svc.shed.client");
  TestServer ts(*world().dataset, 2, cfg);
  std::string batch;
  for (int i = 0; i < 8; ++i) {
    batch += svc::encode_frame(svc::MsgType::kPingEcho, 0, "");
  }
  const auto responses = pipeline_raw(ts.port(), batch, 8);
  ASSERT_EQ(responses.size(), 8u);
  int ok = 0, busy = 0;
  for (const auto& [rtype, rpayload] : responses) {
    if (rtype == svc::MsgType::kOk) {
      ++ok;
    } else {
      EXPECT_EQ(svc::parse_error_payload(rpayload).code, "busy");
      ++busy;
    }
  }
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(busy, 6);
  ts.drain();
  EXPECT_EQ(global_counter("s2s.svc.shed.client") - shed_before, 6u);
}

TEST(SvcOverload, RetryingClientHonorsBusyHintsUnderFlood) {
  svc::ServerConfig cfg;
  cfg.max_inflight = 1;
  cfg.busy_retry_after_ms = 5;
  TestServer ts(*world().dataset, 2, cfg);

  // The retry budget must outlast any flood round: every busy sleeps the
  // >=5ms hint, so 400 retries span >=2s against a ~250ms round —
  // admission is guaranteed once the round ends.
  svc::RetryPolicy policy;
  policy.timeout_ms = 5000;
  policy.max_retries = 400;
  svc::RetryingClient client("127.0.0.1", ts.port(), policy);

  // Bounded flood rounds: a background connection keeps the admission
  // queue occupied with no-cache figure work while the retrying client
  // fights through, until it has observed at least one busy hint.
  for (int round = 0; round < 4 && client.stats().busy_rescheduled == 0;
       ++round) {
    std::atomic<bool> stop{false};
    std::thread flooder([&ts, &stop] {
      svc::FigureQuery f;
      f.figure = 10;
      std::string batch;
      for (int i = 0; i < 8; ++i) {
        batch += svc::encode_frame(svc::MsgType::kFigureDigest,
                                   svc::kFlagNoCache,
                                   svc::encode_figure_query(f));
      }
      svc::Client raw;
      std::string error;
      if (!raw.connect("127.0.0.1", ts.port(), error)) return;
      while (!stop.load()) {
        if (!raw.send_bytes(batch, error)) return;
        for (int i = 0; i < 8; ++i) {
          svc::MsgType rtype;
          std::string rpayload;
          if (!raw.read_frame(&rtype, &rpayload, error)) return;
        }
      }
    });
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(250);
    while (std::chrono::steady_clock::now() < deadline &&
           client.stats().busy_rescheduled == 0) {
      svc::MsgType rtype;
      std::string rpayload;
      std::string error;
      const bool ok = client.call(svc::MsgType::kPingEcho, 0, "", &rtype,
                                  &rpayload, error);
      EXPECT_TRUE(ok) << error;
      if (!ok) break;
      EXPECT_EQ(rtype, svc::MsgType::kOk);
    }
    stop.store(true);
    flooder.join();
  }
  // Busy frames are schedules, not failures: the client slept the
  // server's hint and got through without burning a failed attempt.
  EXPECT_GT(client.stats().busy_rescheduled, 0u);
  EXPECT_GE(client.stats().busy_hint_ms,
            client.stats().busy_rescheduled *
                static_cast<std::uint64_t>(cfg.busy_retry_after_ms));
  EXPECT_EQ(client.stats().failed_attempts, 0u);
}

// ---------------------------------------------------------------------------
// Circuit breaker.
// ---------------------------------------------------------------------------

TEST(SvcResilience, BreakerOpensFastFailsAndHalfOpens) {
  // A drained server's port refuses connections deterministically.
  std::uint16_t dead_port = 0;
  {
    TestServer ts(*world().dataset);
    dead_port = ts.port();
  }
  svc::RetryPolicy policy;
  policy.timeout_ms = 200;
  policy.max_retries = 0;
  policy.breaker_failures = 2;
  policy.breaker_cooldown_ms = 100;
  svc::RetryingClient client("127.0.0.1", dead_port, policy);
  svc::MsgType rtype;
  std::string rpayload;
  std::string error;
  EXPECT_FALSE(
      client.call(svc::MsgType::kPingEcho, 0, "", &rtype, &rpayload, error));
  EXPECT_FALSE(
      client.call(svc::MsgType::kPingEcho, 0, "", &rtype, &rpayload, error));
  EXPECT_EQ(client.stats().giveups, 2u);
  EXPECT_EQ(client.stats().attempts, 2u);
  EXPECT_TRUE(client.breaker_open());
  // Open breaker: fail fast, no wire attempt.
  EXPECT_FALSE(
      client.call(svc::MsgType::kPingEcho, 0, "", &rtype, &rpayload, error));
  EXPECT_EQ(client.stats().breaker_fast_fails, 1u);
  EXPECT_EQ(client.stats().attempts, 2u);
  // After the cooldown a half-open probe goes back on the wire.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_FALSE(
      client.call(svc::MsgType::kPingEcho, 0, "", &rtype, &rpayload, error));
  EXPECT_EQ(client.stats().attempts, 3u);
}

// ---------------------------------------------------------------------------
// Strict startup: the archive-health diagnostic and its repair.
// ---------------------------------------------------------------------------

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

TEST(SvcStartup, MissingArchiveFailsLoudly) {
  svc::DatasetConfig cfg = world().cfg;
  cfg.archive_path = ::testing::TempDir() + "does_not_exist.s2sb";
  svc::Dataset dataset(cfg, &world().dataset->net());
  std::string error;
  EXPECT_FALSE(dataset.load(error));
  EXPECT_FALSE(error.empty());
}

TEST(SvcStartup, DamageDiagnosticCatchesWhatRepairThenFixes) {
  const std::string image = read_file(world().cfg.archive_path);
  ASSERT_FALSE(image.empty());
  const auto blocks = io::scan_blocks(image.data(), image.size());
  ASSERT_TRUE(blocks.has_value());
  ASSERT_GT(blocks->size(), 2u);

  // A corrupt interior block: load succeeds (readers skip damage) but the
  // health check must refuse to bless the ingest.
  svc::DatasetConfig cfg = world().cfg;
  cfg.archive_path = ::testing::TempDir() + "s2s_chaos_damaged_" +
                     std::to_string(::getpid()) + ".s2sb";
  std::string corrupted = image;
  corrupted[(*blocks)[1].payload_offset + 3] ^= 0x40;
  write_file(cfg.archive_path, corrupted);
  svc::Dataset dataset(cfg, &world().dataset->net());
  std::string error;
  ASSERT_TRUE(dataset.load(error)) << error;
  EXPECT_NE(svc::archive_damage(dataset.ingest()).find("corrupt"),
            std::string::npos)
      << svc::archive_damage(dataset.ingest());

  // A torn tail (killed writer) is flagged too.
  write_file(cfg.archive_path,
             image.substr(0, blocks->back().payload_offset + 7));
  svc::Dataset torn(cfg, &world().dataset->net());
  ASSERT_TRUE(torn.load(error)) << error;
  EXPECT_NE(svc::archive_damage(torn.ingest()).find("torn"),
            std::string::npos)
      << svc::archive_damage(torn.ingest());

  // recover_archive() is the prescribed fix: after repair the diagnostic
  // comes back clean and the dataset serves the surviving prefix.
  const auto res = io::recover_archive(cfg.archive_path);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_TRUE(res.repaired);
  svc::Dataset repaired(cfg, &world().dataset->net());
  ASSERT_TRUE(repaired.load(error)) << error;
  EXPECT_EQ(svc::archive_damage(repaired.ingest()), "");
  EXPECT_GT(repaired.ingest().records, 0u);
}

}  // namespace
}  // namespace s2s
