// exec::ThreadPool unit tests plus the golden serial-vs-parallel
// contract: every converted analysis pass must produce byte-identical
// results at 1, 2 and 8 threads (DESIGN.md section 9).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/congestion_detect.h"
#include "core/dualstack.h"
#include "core/localize.h"
#include "core/routing_study.h"
#include "exec/parallel_for.h"
#include "exec/pool.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "probe/campaign.h"

namespace s2s {
namespace {

using topology::ServerId;

TEST(ResolveThreadCount, ExplicitRequestWins) {
  ::setenv("S2S_THREADS", "3", 1);
  EXPECT_EQ(exec::resolve_thread_count(5), 5u);
  ::unsetenv("S2S_THREADS");
}

TEST(ResolveThreadCount, EnvOverridesAuto) {
  ::setenv("S2S_THREADS", "3", 1);
  EXPECT_EQ(exec::resolve_thread_count(0), 3u);
  ::unsetenv("S2S_THREADS");
}

TEST(ResolveThreadCount, GarbageEnvFallsBackToHardware) {
  for (const char* bad : {"abc", "-2", "0", "3x", ""}) {
    ::setenv("S2S_THREADS", bad, 1);
    EXPECT_EQ(exec::resolve_thread_count(0), exec::hardware_threads()) << bad;
  }
  ::unsetenv("S2S_THREADS");
  EXPECT_EQ(exec::resolve_thread_count(0), exec::hardware_threads());
  EXPECT_GE(exec::hardware_threads(), 1u);
}

TEST(ResolveThreadCount, OverflowAndHugeEnvValuesAreRejected) {
  // strtol clamps overflow to LONG_MAX (> 0), so without an ERANGE check
  // these would silently coerce to absurd worker counts.
  for (const char* bad :
       {"99999999999999999999", "9223372036854775807", "4097", "1e3", "+",
        "--3"}) {
    ::setenv("S2S_THREADS", bad, 1);
    EXPECT_EQ(exec::resolve_thread_count(0), exec::hardware_threads()) << bad;
  }
  // The cap itself is still accepted.
  ::setenv("S2S_THREADS", "4096", 1);
  EXPECT_EQ(exec::resolve_thread_count(0), 4096u);
  ::unsetenv("S2S_THREADS");
}

TEST(ResolveThreadCount, BadEnvWarnsOncePerValue) {
  std::vector<std::string> messages;
  obs::set_log_sink([&](obs::LogLevel level, std::string_view message) {
    if (level == obs::LogLevel::kWarn) messages.emplace_back(message);
  });
  ::setenv("S2S_THREADS", "bogus-once", 1);
  exec::resolve_thread_count(0);
  exec::resolve_thread_count(0);
  exec::resolve_thread_count(0);
  ::unsetenv("S2S_THREADS");
  obs::set_log_sink({});
  const auto mentions = [&](const std::string& needle) {
    std::size_t n = 0;
    for (const auto& m : messages) {
      if (m.find(needle) != std::string::npos) ++n;
    }
    return n;
  };
  EXPECT_EQ(mentions("bogus-once"), 1u);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  exec::ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  constexpr std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  pool.run(n, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, SerialPoolRunsInlineInIndexOrder) {
  exec::ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  pool.run(64, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  std::vector<std::size_t> expected(64);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, PropagatesFirstTaskException) {
  exec::ThreadPool pool(4);
  std::atomic<std::size_t> executed{0};
  EXPECT_THROW(
      pool.run(100,
               [&](std::size_t i) {
                 executed.fetch_add(1, std::memory_order_relaxed);
                 if (i == 17) throw std::runtime_error("boom");
               }),
      std::runtime_error);
  // A poisoned batch still runs every index (claimed work is never
  // abandoned), and the pool stays usable afterwards.
  EXPECT_EQ(executed.load(), 100u);
  std::atomic<std::size_t> after{0};
  pool.run(10, [&](std::size_t) {
    after.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(after.load(), 10u);
}

TEST(ThreadPool, ReusableAcrossManyBatches) {
  exec::ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  for (int batch = 0; batch < 50; ++batch) {
    pool.run(97, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 50u * 97u);
}

TEST(ParallelFor, NullPoolRunsInlineInShardOrder) {
  std::vector<std::size_t> order;
  exec::parallel_for(nullptr, 8, "test.shard",
                     [&](std::size_t s) { order.push_back(s); });
  std::vector<std::size_t> expected(8);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ShardedReduce, MergesPartialsInShardOrder) {
  exec::ThreadPool pool(4);
  std::vector<std::size_t> merged;
  exec::sharded_reduce<std::vector<std::size_t>>(
      &pool, 16, "test.shard",
      [](std::size_t shard, std::vector<std::size_t>& partial) {
        partial.push_back(shard);
      },
      [&](const std::vector<std::size_t>& partial) {
        merged.insert(merged.end(), partial.begin(), partial.end());
      });
  std::vector<std::size_t> expected(16);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(merged, expected);
}

// ---------------------------------------------------------------------
// Golden serial-vs-parallel equality on a seeded simnet deployment.

// Full-precision (hexfloat) serializers: equal strings mean bit-equal
// doubles, not just close ones.
void put(std::ostream& os, double v) { os << std::hexfloat << v << '\n'; }
void put(std::ostream& os, std::size_t v) { os << v << '\n'; }

void put_quality(std::ostream& os, const core::DataQualityReport& q) {
  os << q.to_string() << '\n';
}

std::string serialize(const core::CongestionSurvey& s) {
  std::ostringstream os;
  for (const auto* fam : {&s.v4, &s.v6}) {
    put(os, fam->pairs_total);
    put(os, fam->pairs_assessed);
    put(os, fam->high_variation);
    put(os, fam->consistent);
  }
  for (const auto& f : s.flagged) {
    os << f.src << ',' << f.dst << ',' << static_cast<int>(f.family) << ':';
    put(os, f.verdict.samples);
    put(os, f.verdict.missing_samples);
    put(os, f.verdict.variation_ms);
    put(os, f.verdict.diurnal_ratio);
  }
  put_quality(os, s.quality);
  return os.str();
}

std::string serialize(const core::LocalizeResult& r) {
  std::ostringstream os;
  put(os, r.pairs_considered);
  put(os, r.pairs_static);
  put(os, r.pairs_symmetric);
  put(os, r.pairs_persistent);
  put(os, r.pairs_localized);
  for (const auto& seg : r.segments) {
    os << seg.src << ',' << seg.dst << ',' << static_cast<int>(seg.family)
       << ',' << seg.segment_index << ':';
    put(os, seg.rho);
    put(os, seg.diurnal_ratio);
    put(os, seg.overhead_ms);
  }
  return os.str();
}

std::string serialize(const core::DualStackStudy& s) {
  std::ostringstream os;
  put(os, s.pairs_matched);
  put(os, static_cast<std::size_t>(s.samples_matched));
  put(os, static_cast<std::size_t>(s.samples_same_path));
  os << s.diff_all.to_tsv() << s.diff_same_path.to_tsv();
  for (double d : s.pair_median_diff) put(os, d);
  put_quality(os, s.quality);
  return os.str();
}

std::string serialize(const core::RoutingStudy& s) {
  std::ostringstream os;
  for (const auto* fam : {&s.v4, &s.v6}) {
    put(os, fam->timelines);
    for (double v : fam->unique_paths) put(os, v);
    for (double v : fam->changes) put(os, v);
    for (double v : fam->popular_prevalence) put(os, v);
    for (const auto& row : fam->suboptimal_prevalence) {
      for (double v : row) put(os, v);
    }
    for (double v : fam->lifetime_hours_p10) put(os, v);
    for (double v : fam->delta_p10_ms) put(os, v);
    for (double v : fam->lifetime_hours_p90) put(os, v);
    for (double v : fam->delta_p90_ms) put(os, v);
    for (double v : fam->delta_stddev_ms) put(os, v);
  }
  for (double v : s.path_pairs_v4) put(os, v);
  for (double v : s.path_pairs_v6) put(os, v);
  return os.str();
}

/// Seeded deployment shared by every golden test (built once: the
/// campaigns dominate the suite's runtime).
class GoldenParallel : public ::testing::Test {
 protected:
  struct Data {
    simnet::Network net;
    core::PingSeriesStore pings;
    core::TimelineStore timelines;
    core::SegmentSeriesStore segments;

    Data()
        : net(net_config()),
          pings(0.0, net::kFifteenMinutes, 672),
          timelines(net.topo(), net.rib(), {0.0, net::kThreeHours}),
          segments(0.0, net::kThirtyMinutes, 240) {
      std::vector<std::pair<ServerId, ServerId>> pairs;
      const auto& topo = net.topo();
      for (ServerId a = 0; a < topo.servers.size(); ++a) {
        for (ServerId b = a + 1; b < topo.servers.size(); ++b) {
          pairs.emplace_back(a, b);
        }
      }

      probe::PingCampaignConfig ping_cfg;
      ping_cfg.start_day = 0.0;
      ping_cfg.days = 7.0;
      probe::PingCampaign ping_campaign(net, ping_cfg, pairs);
      ping_campaign.run([&](const probe::PingRecord& r) { pings.add(r); });

      probe::TracerouteCampaignConfig trace_cfg;
      trace_cfg.days = 20.0;
      probe::TracerouteCampaign trace_campaign(net, trace_cfg, pairs);
      trace_campaign.run(
          [&](const probe::TracerouteRecord& r) { timelines.add(r); });

      probe::TracerouteCampaignConfig seg_cfg;
      seg_cfg.days = 5.0;
      seg_cfg.interval_s = net::kThirtyMinutes;
      seg_cfg.paris_switch_day = 0.0;
      seg_cfg.traceroute.stop_early_prob = 0.1;
      probe::TracerouteCampaign seg_campaign(net, seg_cfg, pairs);
      seg_campaign.run(
          [&](const probe::TracerouteRecord& r) { segments.add(r); });
    }

    static simnet::NetworkConfig net_config() {
      simnet::NetworkConfig cfg;
      cfg.topology.seed = 2024;
      cfg.topology.tier1_count = 4;
      cfg.topology.transit_count = 16;
      cfg.topology.stub_count = 50;
      cfg.topology.server_count = 14;
      return cfg;
    }
  };

  static const Data& data() {
    static const Data d;
    return d;
  }

  /// Runs `pass` serially (null pool) and at 1, 2 and 8 threads; asserts
  /// the serialized result and the counter snapshot never change.
  template <typename Pass>
  static void expect_thread_count_invariant(const char* name, Pass&& pass) {
    data();  // build campaigns BEFORE the baseline snapshot window
    auto& reg = obs::MetricsRegistry::global();
    reg.reset();
    const std::string golden = pass(nullptr);
    ASSERT_FALSE(golden.empty());
    const auto golden_counters = reg.snapshot().counters;
    for (const unsigned threads : {1u, 2u, 8u}) {
      exec::ThreadPool pool(threads);
      reg.reset();
      EXPECT_EQ(pass(&pool), golden) << name << " @ " << threads
                                     << " threads";
      // Counters (pairs assessed/flagged/..., exec tasks) are exact
      // counts, not timings: they must match across thread counts too.
      EXPECT_EQ(reg.snapshot().counters, golden_counters)
          << name << " counters @ " << threads << " threads";
    }
  }
};

TEST_F(GoldenParallel, SurveyCongestionIsThreadCountInvariant) {
  core::CongestionDetectConfig cfg;
  cfg.min_samples = 300;
  // Loose thresholds so the flagged list is non-empty: its order is the
  // part of the merge contract a count-only comparison would not cover.
  cfg.variation_threshold_ms = 1.0;
  cfg.diurnal_ratio_threshold = 0.02;
  std::size_t flagged = 0;
  expect_thread_count_invariant("survey", [&](exec::ThreadPool* pool) {
    const auto survey = core::survey_congestion(data().pings, cfg, pool);
    flagged = survey.flagged.size();
    return serialize(survey);
  });
  EXPECT_GT(flagged, 0u);
}

TEST_F(GoldenParallel, LocalizeCongestionIsThreadCountInvariant) {
  core::LocalizeConfig cfg;
  cfg.min_traces = 30;
  cfg.require_symmetric_as_paths = true;
  // Loose localization gates so the segment list is non-empty and its
  // merge order is actually exercised.
  cfg.diurnal_ratio_threshold = 0.0;
  cfg.rho_threshold = 0.0;
  cfg.min_row_coverage = 0.2;
  std::size_t localized = 0;
  expect_thread_count_invariant("localize", [&](exec::ThreadPool* pool) {
    const auto loc = core::localize_congestion(data().segments,
                                               data().net.rib(), cfg, pool);
    localized = loc.segments.size();
    return serialize(loc);
  });
  EXPECT_GT(localized, 0u);
}

TEST_F(GoldenParallel, DualStackStudyIsThreadCountInvariant) {
  expect_thread_count_invariant("dualstack", [&](exec::ThreadPool* pool) {
    return serialize(core::run_dualstack_study(data().timelines, pool));
  });
}

TEST_F(GoldenParallel, RoutingStudyIsThreadCountInvariant) {
  core::RoutingStudyConfig cfg;
  cfg.min_observations = 50;
  expect_thread_count_invariant("routing", [&](exec::ThreadPool* pool) {
    return serialize(core::run_routing_study(data().timelines, cfg, pool));
  });
}

}  // namespace
}  // namespace s2s
