#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "probe/campaign.h"
#include "probe/ping.h"
#include "probe/traceroute.h"

namespace s2s::probe {
namespace {

using topology::ServerId;

simnet::NetworkConfig small_cfg(std::uint64_t seed) {
  simnet::NetworkConfig cfg;
  cfg.topology.seed = seed;
  cfg.topology.tier1_count = 5;
  cfg.topology.transit_count = 25;
  cfg.topology.stub_count = 80;
  cfg.topology.server_count = 30;
  return cfg;
}

class ProbeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<simnet::Network>(small_cfg(41));
    std::vector<ServerId> servers;
    for (ServerId s = 0; s < net_->topo().servers.size(); ++s) {
      servers.push_back(s);
    }
    net_->prepare_full_mesh(servers);
  }
  std::unique_ptr<simnet::Network> net_;
};

TEST_F(ProbeFixture, CompleteTracerouteEndsAtDestination) {
  TracerouteConfig cfg;
  cfg.stop_early_prob = 0.0;
  cfg.classic_loop_prob_v4 = 0.0;
  cfg.classic_false_hop_prob = 0.0;
  TracerouteEngine engine(*net_, cfg, stats::Rng(1));
  const auto& topo = net_->topo();
  std::size_t complete = 0;
  for (ServerId a = 0; a < 8; ++a) {
    for (ServerId b = 8; b < 16; ++b) {
      const auto rec = engine.run(a, b, net::Family::kIPv4, net::SimTime(0),
                                  TracerouteMethod::kParis);
      ASSERT_TRUE(rec.has_value());
      EXPECT_EQ(rec->src_addr, net::IPAddr(topo.servers[a].addr4));
      if (!rec->complete) continue;
      ++complete;
      ASSERT_FALSE(rec->hops.empty());
      EXPECT_EQ(*rec->hops.back().addr, net::IPAddr(topo.servers[b].addr4));
      // First hop is the source gateway (when responsive).
      if (rec->hops.front().addr) {
        EXPECT_EQ(*rec->hops.front().addr,
                  net::IPAddr(topo.servers[a].gateway_addr4));
      }
      // End-to-end RTT exceeds every intermediate hop's propagation share.
      EXPECT_GT(rec->end_to_end_rtt_ms(), 0.0);
    }
  }
  EXPECT_GT(complete, 30u);
}

TEST_F(ProbeFixture, HopRttsRoughlyIncrease) {
  TracerouteConfig cfg;
  cfg.stop_early_prob = 0.0;
  cfg.noise.slow_path_prob = 0.0;  // suppress control-plane outliers
  cfg.noise.spike_prob = 0.0;
  TracerouteEngine engine(*net_, cfg, stats::Rng(2));
  const auto rec = engine.run(0, 20, net::Family::kIPv4, net::SimTime(0),
                              TracerouteMethod::kParis);
  ASSERT_TRUE(rec.has_value());
  if (!rec->complete) GTEST_SKIP() << "pair unroutable";
  // Compare first and last responsive intermediate hops.
  double first = -1, last = -1;
  for (const auto& hop : rec->hops) {
    if (!hop.addr) continue;
    if (first < 0) first = hop.rtt_ms;
    last = hop.rtt_ms;
  }
  EXPECT_GE(last, first);
}

TEST_F(ProbeFixture, IncompleteTracerouteEndsWithStars) {
  TracerouteConfig cfg;
  cfg.stop_early_prob = 1.0;  // force truncation
  TracerouteEngine engine(*net_, cfg, stats::Rng(3));
  const auto rec = engine.run(0, 20, net::Family::kIPv4, net::SimTime(0),
                              TracerouteMethod::kParis);
  ASSERT_TRUE(rec.has_value());
  EXPECT_FALSE(rec->complete);
  EXPECT_FALSE(rec->hops.back().addr.has_value());
}

TEST_F(ProbeFixture, V6RequiresDualStackEndpoints) {
  TracerouteConfig cfg;
  TracerouteEngine engine(*net_, cfg, stats::Rng(4));
  const auto& servers = net_->topo().servers;
  std::optional<ServerId> v4_only;
  std::optional<ServerId> dual;
  for (ServerId s = 0; s < servers.size(); ++s) {
    if (!servers[s].dual_stack() && !v4_only) v4_only = s;
    if (servers[s].dual_stack() && !dual) dual = s;
  }
  if (!v4_only || !dual) GTEST_SKIP() << "need both kinds in this seed";
  EXPECT_FALSE(engine.run(*v4_only, *dual, net::Family::kIPv6, net::SimTime(0),
                          TracerouteMethod::kClassic)
                   .has_value());
}

TEST_F(ProbeFixture, ClassicLoopArtifactsAppearAtRoughlyConfiguredRate) {
  TracerouteConfig cfg;
  cfg.stop_early_prob = 0.0;
  cfg.classic_loop_prob_v4 = 0.5;  // exaggerated for the statistic
  cfg.classic_false_hop_prob = 0.0;
  TracerouteEngine engine(*net_, cfg, stats::Rng(5));
  const auto& topo = net_->topo();
  const bgp::Rib& rib = net_->rib();
  std::size_t complete = 0, loops = 0;
  for (ServerId a = 0; a < 12; ++a) {
    for (ServerId b = 12; b < 24; ++b) {
      const auto rec = engine.run(a, b, net::Family::kIPv4, net::SimTime(0),
                                  TracerouteMethod::kClassic);
      if (!rec || !rec->complete) continue;
      ++complete;
      // Detect an AS loop exactly as the analysis does: collapse and look
      // for repeats.
      std::vector<std::uint32_t> seq;
      for (const auto& hop : rec->hops) {
        if (!hop.addr) continue;
        const auto asn = rib.origin(*hop.addr);
        if (!asn) continue;
        if (seq.empty() || seq.back() != asn->value()) {
          seq.push_back(asn->value());
        }
      }
      std::set<std::uint32_t> seen;
      for (auto v : seq) {
        if (!seen.insert(v).second) {
          ++loops;
          break;
        }
      }
    }
  }
  ASSERT_GT(complete, 50u);
  // Not every traceroute has an eligible AS boundary, so the realized rate
  // is below the configured 50%, but must be clearly nonzero.
  EXPECT_GT(static_cast<double>(loops) / static_cast<double>(complete), 0.15);
  (void)topo;
}

TEST_F(ProbeFixture, ParisNeverManufacturesLoops) {
  TracerouteConfig cfg;
  cfg.stop_early_prob = 0.0;
  cfg.classic_loop_prob_v4 = 1.0;  // would fire on classic
  TracerouteEngine engine(*net_, cfg, stats::Rng(6));
  const bgp::Rib& rib = net_->rib();
  for (ServerId a = 0; a < 6; ++a) {
    for (ServerId b = 6; b < 12; ++b) {
      const auto rec = engine.run(a, b, net::Family::kIPv4, net::SimTime(0),
                                  TracerouteMethod::kParis);
      if (!rec || !rec->complete) continue;
      std::vector<std::uint32_t> seq;
      for (const auto& hop : rec->hops) {
        if (!hop.addr) continue;
        if (const auto asn = rib.origin(*hop.addr)) {
          if (seq.empty() || seq.back() != asn->value()) {
            seq.push_back(asn->value());
          }
        }
      }
      std::set<std::uint32_t> seen;
      for (auto v : seq) EXPECT_TRUE(seen.insert(v).second);
    }
  }
}

TEST_F(ProbeFixture, PingMatchesTracerouteScale) {
  PingConfig pcfg;
  pcfg.loss_prob = 0.0;
  PingEngine ping(*net_, pcfg, stats::Rng(7));
  TracerouteConfig tcfg;
  tcfg.stop_early_prob = 0.0;
  TracerouteEngine tracer(*net_, tcfg, stats::Rng(8));
  std::size_t compared = 0;
  for (ServerId a = 0; a < 6 && compared < 10; ++a) {
    for (ServerId b = 6; b < 12; ++b) {
      const auto p = ping.run(a, b, net::Family::kIPv4, net::SimTime(0));
      const auto t = tracer.run(a, b, net::Family::kIPv4, net::SimTime(0),
                                TracerouteMethod::kParis);
      if (!p || !p->success || !t || !t->complete) continue;
      EXPECT_NEAR(p->rtt_ms, t->end_to_end_rtt_ms(),
                  0.25 * std::max(p->rtt_ms, t->end_to_end_rtt_ms()) + 25.0);
      ++compared;
    }
  }
  EXPECT_GT(compared, 3u);
}

TEST(DowntimeSchedule, WindowsCoverSomeTimeAndNotAll) {
  DowntimeConfig cfg;
  cfg.monthly_window_prob = 1.0;
  cfg.window_days_min = 1.0;
  cfg.window_days_max = 2.0;
  const DowntimeSchedule schedule(4, 90.0, cfg, stats::Rng(9));
  std::size_t down = 0, total = 0;
  for (int h = 0; h < 90 * 24; h += 3) {
    for (ServerId s = 0; s < 4; ++s) {
      down += schedule.down(s, net::SimTime::from_hours(h));
      ++total;
    }
  }
  EXPECT_GT(down, 0u);
  EXPECT_LT(down, total / 2);
}

TEST_F(ProbeFixture, CampaignDeliversBothFamiliesAndDirections) {
  std::vector<std::pair<ServerId, ServerId>> pairs{{0, 20}};
  TracerouteCampaignConfig cfg;
  cfg.days = 2.0;
  cfg.downtime.monthly_window_prob = 0.0;
  TracerouteCampaign campaign(*net_, cfg, pairs);
  std::set<std::tuple<ServerId, ServerId, net::Family>> seen;
  std::size_t count = 0;
  campaign.run([&](const TracerouteRecord& rec) {
    seen.insert({rec.src, rec.dst, rec.family});
    ++count;
  });
  EXPECT_EQ(campaign.epochs(), 16u);
  // Both directions over IPv4 at least (IPv6 depends on dual-stack).
  EXPECT_TRUE(seen.contains({0, 20, net::Family::kIPv4}));
  EXPECT_TRUE(seen.contains({20, 0, net::Family::kIPv4}));
  EXPECT_GE(count, 2 * campaign.epochs());
}

}  // namespace
}  // namespace s2s::probe
