#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "io/binrec.h"
#include "io/records_io.h"
#include "probe/campaign.h"

namespace s2s::probe {
namespace {

using topology::ServerId;

TEST(CampaignCheckpoint, SerializeParseRoundTrip) {
  CampaignCheckpoint ckpt;
  ckpt.next_epoch = 42;
  ckpt.rng_state = {1, 2, 0x9e3779b97f4a7c15ULL, ~std::uint64_t{0}};
  const auto parsed = CampaignCheckpoint::parse(ckpt.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->next_epoch, 42u);
  EXPECT_EQ(parsed->rng_state, ckpt.rng_state);
}

TEST(CampaignCheckpoint, ParseRejectsGarbage) {
  EXPECT_FALSE(CampaignCheckpoint::parse(""));
  EXPECT_FALSE(CampaignCheckpoint::parse("S2SCKPT"));
  EXPECT_FALSE(CampaignCheckpoint::parse("S2SCKPT 2 0 1 2 3 4"));  // version
  EXPECT_FALSE(CampaignCheckpoint::parse("S2SCKPT 1 0 1 2 3"));    // short
  EXPECT_FALSE(CampaignCheckpoint::parse("S2SCKPT 1 0 1 2 3 4 5"));  // long
  EXPECT_FALSE(CampaignCheckpoint::parse("S2SCKPT 1 0 1 2 3 x"));
  EXPECT_FALSE(CampaignCheckpoint::parse("S2SCKPT 1 0 1 2 3 -4"));
}

simnet::NetworkConfig resume_net_cfg() {
  simnet::NetworkConfig cfg;
  cfg.topology.seed = 77;
  cfg.topology.tier1_count = 5;
  cfg.topology.transit_count = 20;
  cfg.topology.stub_count = 60;
  cfg.topology.server_count = 20;
  return cfg;
}

/// A sink that appends serialized records to `buf` and throws once the
/// `throw_at`-th record arrives (simulating a full disk mid-epoch).
template <typename Record>
struct FlakySink {
  std::string& buf;
  std::size_t throw_at;
  std::size_t delivered = 0;

  void operator()(const Record& r) {
    if (++delivered == throw_at) throw std::runtime_error("disk full");
    buf += io::to_line(r);
    buf += '\n';
  }
};

TEST(CampaignResume, TracerouteResumeIsByteIdentical) {
  simnet::Network net(resume_net_cfg());
  std::vector<std::pair<ServerId, ServerId>> pairs{{0, 12}};
  TracerouteCampaignConfig cfg;
  cfg.days = 2.0;  // 16 three-hour epochs
  cfg.downtime.monthly_window_prob = 0.0;

  // Reference: the uninterrupted record stream.
  std::string full;
  {
    TracerouteCampaign campaign(net, cfg, pairs);
    const auto res = campaign.run([&](const TracerouteRecord& r) {
      full += io::to_line(r);
      full += '\n';
    });
    EXPECT_FALSE(res.aborted);
    EXPECT_EQ(res.epochs_completed, campaign.epochs());
    EXPECT_EQ(res.checkpoint.next_epoch, campaign.epochs());
  }
  ASSERT_FALSE(full.empty());

  // Interrupted run: the sink dies mid-epoch. Track the byte offset of
  // the last completed epoch via the progress callback, exactly as a
  // writer flushing at checkpoint boundaries would.
  std::string buf;
  std::size_t boundary = 0;
  CampaignRunResult aborted;
  {
    TracerouteCampaign campaign(net, cfg, pairs);
    FlakySink<TracerouteRecord> sink{buf, 9};
    aborted = campaign.run([&](const TracerouteRecord& r) { sink(r); },
                           [&](double) { boundary = buf.size(); });
    EXPECT_TRUE(aborted.aborted);
    EXPECT_EQ(aborted.error, "disk full");
    EXPECT_EQ(aborted.records_delivered, 8u);
    EXPECT_EQ(aborted.epochs_completed, aborted.checkpoint.next_epoch);
    EXPECT_LT(aborted.checkpoint.next_epoch, campaign.epochs());
  }

  // Recovery: drop the partial epoch, then resume a *fresh* campaign from
  // the text form of the checkpoint (at-least-once delivery: the aborted
  // epoch is replayed in full).
  buf.resize(boundary);
  const auto ckpt = CampaignCheckpoint::parse(aborted.checkpoint.serialize());
  ASSERT_TRUE(ckpt.has_value());
  {
    TracerouteCampaign campaign(net, cfg, pairs);
    const auto res = campaign.run(
        [&](const TracerouteRecord& r) {
          buf += io::to_line(r);
          buf += '\n';
        },
        {}, &*ckpt);
    EXPECT_FALSE(res.aborted);
    EXPECT_EQ(res.checkpoint.next_epoch, campaign.epochs());
  }
  EXPECT_EQ(buf, full);
}

TEST(CampaignResume, PingResumeIsByteIdentical) {
  simnet::Network net(resume_net_cfg());
  std::vector<std::pair<ServerId, ServerId>> pairs{{0, 12}};
  PingCampaignConfig cfg;
  cfg.start_day = 0.0;
  cfg.days = 0.5;  // 48 fifteen-minute epochs
  cfg.downtime.monthly_window_prob = 0.0;

  std::string full;
  {
    PingCampaign campaign(net, cfg, pairs);
    campaign.run([&](const PingRecord& r) {
      full += io::to_line(r);
      full += '\n';
    });
  }
  ASSERT_FALSE(full.empty());

  std::string buf;
  std::size_t boundary = 0;
  CampaignRunResult aborted;
  {
    PingCampaign campaign(net, cfg, pairs);
    FlakySink<PingRecord> sink{buf, 15};
    aborted = campaign.run([&](const PingRecord& r) { sink(r); },
                           [&](double) { boundary = buf.size(); });
    EXPECT_TRUE(aborted.aborted);
    EXPECT_EQ(aborted.records_delivered, 14u);
  }

  buf.resize(boundary);
  const auto ckpt = CampaignCheckpoint::parse(aborted.checkpoint.serialize());
  ASSERT_TRUE(ckpt.has_value());
  {
    PingCampaign campaign(net, cfg, pairs);
    campaign.run(
        [&](const PingRecord& r) {
          buf += io::to_line(r);
          buf += '\n';
        },
        {}, &*ckpt);
  }
  EXPECT_EQ(buf, full);
}

TEST(CampaignResume, BinaryEpochResumeIsByteIdentical) {
  // The binary analog of the text resume: a BinRecordWriter flushing one
  // block per epoch at the progress boundary, interrupted mid-epoch,
  // truncated to the last completed epoch and resumed by *appending*
  // (write_header=false). Per-block dictionaries and timestamp deltas
  // reset at every flush, so blocks are pure functions of the epoch's
  // record sequence and the spliced archive must equal the uninterrupted
  // one byte for byte. Footerless on both sides: a footer indexes the
  // whole file and is rebuilt (or skipped) on splice, not appended.
  simnet::Network net(resume_net_cfg());
  std::vector<std::pair<ServerId, ServerId>> pairs{{0, 12}};
  TracerouteCampaignConfig cfg;
  cfg.days = 2.0;  // 16 three-hour epochs
  cfg.downtime.monthly_window_prob = 0.0;

  const io::BinWriterConfig plain{.block_records = 4096,
                                  .write_header = true,
                                  .write_footer = false};

  std::string full;
  {
    TracerouteCampaign campaign(net, cfg, pairs);
    std::ostringstream out(std::ios::binary);
    io::BinRecordWriter writer(out, plain);
    const auto res = campaign.run(
        [&](const TracerouteRecord& r) { writer.write(r); },
        [&](double) { writer.flush_block(); });
    EXPECT_FALSE(res.aborted);
    writer.finish();
    full = out.str();
  }
  ASSERT_GT(full.size(), 16u);

  // Interrupted run: the sink dies mid-epoch; the epoch boundary flushes
  // the writer and records the archive's safe byte offset.
  std::string buf;
  std::size_t boundary = 0;
  CampaignRunResult aborted;
  {
    TracerouteCampaign campaign(net, cfg, pairs);
    std::ostringstream out(std::ios::binary);
    io::BinRecordWriter writer(out, plain);
    std::size_t delivered = 0;
    aborted = campaign.run(
        [&](const TracerouteRecord& r) {
          if (++delivered == 9) throw std::runtime_error("disk full");
          writer.write(r);
        },
        [&](double) {
          writer.flush_block();
          boundary = static_cast<std::size_t>(out.tellp());
        });
    EXPECT_TRUE(aborted.aborted);
    EXPECT_EQ(aborted.error, "disk full");
    EXPECT_LT(aborted.checkpoint.next_epoch, campaign.epochs());
    buf = out.str().substr(0, boundary);  // drop the torn epoch
  }

  const auto ckpt = CampaignCheckpoint::parse(aborted.checkpoint.serialize());
  ASSERT_TRUE(ckpt.has_value());
  {
    TracerouteCampaign campaign(net, cfg, pairs);
    std::ostringstream out(std::ios::binary);
    io::BinRecordWriter writer(
        out, io::BinWriterConfig{.block_records = 4096,
                                 .write_header = false,
                                 .write_footer = false});
    const auto res = campaign.run(
        [&](const TracerouteRecord& r) { writer.write(r); },
        [&](double) { writer.flush_block(); }, &*ckpt);
    EXPECT_FALSE(res.aborted);
    writer.finish();
    buf += out.str();
  }
  EXPECT_EQ(buf, full);

  // And the spliced archive ingests cleanly: every record, no corruption.
  std::istringstream in(buf, std::ios::binary);
  io::BinRecordReader reader(in);
  ASSERT_TRUE(reader.ok());
  std::size_t records = 0;
  reader.read_all([&](const TracerouteRecord&) { ++records; },
                  [](const PingRecord&) {});
  EXPECT_EQ(reader.counters().corrupt_blocks, 0u);
  EXPECT_EQ(records, reader.counters().records_read);
  EXPECT_GT(records, 0u);
}

TEST(CampaignResume, ResumeFromFinalCheckpointDeliversNothing) {
  simnet::Network net(resume_net_cfg());
  std::vector<std::pair<ServerId, ServerId>> pairs{{0, 12}};
  TracerouteCampaignConfig cfg;
  cfg.days = 1.0;
  TracerouteCampaign first(net, cfg, pairs);
  const auto done = first.run([](const TracerouteRecord&) {});
  EXPECT_EQ(done.checkpoint.next_epoch, first.epochs());

  TracerouteCampaign second(net, cfg, pairs);
  const auto res =
      second.run([](const TracerouteRecord&) {}, {}, &done.checkpoint);
  EXPECT_EQ(res.records_delivered, 0u);
  EXPECT_EQ(res.epochs_completed, 0u);
  EXPECT_FALSE(res.aborted);
}

// ---------------------------------------------------------------------------
// DowntimeSchedule boundary semantics (half-open windows).
// ---------------------------------------------------------------------------

TEST(DowntimeScheduleBoundary, WindowsAreHalfOpen) {
  DowntimeSchedule schedule(DowntimeSchedule::Windows{{{100, 200}}});
  EXPECT_FALSE(schedule.down(0, net::SimTime(99)));
  EXPECT_TRUE(schedule.down(0, net::SimTime(100)));   // down at start
  EXPECT_TRUE(schedule.down(0, net::SimTime(199)));
  EXPECT_FALSE(schedule.down(0, net::SimTime(200)));  // up at end
  EXPECT_FALSE(schedule.down(0, net::SimTime(201)));
}

TEST(DowntimeScheduleBoundary, ZeroDurationWindowIsNeverDown) {
  DowntimeSchedule schedule(DowntimeSchedule::Windows{{{150, 150}}});
  EXPECT_FALSE(schedule.down(0, net::SimTime(149)));
  EXPECT_FALSE(schedule.down(0, net::SimTime(150)));
  EXPECT_FALSE(schedule.down(0, net::SimTime(151)));
}

TEST(DowntimeScheduleBoundary, InvertedWindowIsDropped) {
  DowntimeSchedule schedule(DowntimeSchedule::Windows{{{200, 100}}});
  for (std::int64_t t = 50; t <= 250; t += 25) {
    EXPECT_FALSE(schedule.down(0, net::SimTime(t))) << t;
  }
}

TEST(DowntimeScheduleBoundary, OverlappingWindowsAreMerged) {
  // A short window nested inside a long one: before normalization, the
  // start-instant binary search found only the short window and reported
  // t=50 as up.
  DowntimeSchedule schedule(
      DowntimeSchedule::Windows{{{0, 100}, {10, 20}}});
  EXPECT_TRUE(schedule.down(0, net::SimTime(5)));
  EXPECT_TRUE(schedule.down(0, net::SimTime(15)));
  EXPECT_TRUE(schedule.down(0, net::SimTime(50)));
  EXPECT_TRUE(schedule.down(0, net::SimTime(99)));
  EXPECT_FALSE(schedule.down(0, net::SimTime(100)));
}

TEST(DowntimeScheduleBoundary, UnsortedAdjacentWindowsMerge) {
  DowntimeSchedule schedule(
      DowntimeSchedule::Windows{{{50, 100}, {0, 50}}});
  EXPECT_TRUE(schedule.down(0, net::SimTime(0)));
  EXPECT_TRUE(schedule.down(0, net::SimTime(49)));
  EXPECT_TRUE(schedule.down(0, net::SimTime(50)));
  EXPECT_TRUE(schedule.down(0, net::SimTime(99)));
  EXPECT_FALSE(schedule.down(0, net::SimTime(100)));
}

TEST(DowntimeScheduleBoundary, ServersAreIndependent) {
  DowntimeSchedule schedule(
      DowntimeSchedule::Windows{{{100, 200}}, {}});
  EXPECT_TRUE(schedule.down(0, net::SimTime(150)));
  EXPECT_FALSE(schedule.down(1, net::SimTime(150)));
}

}  // namespace
}  // namespace s2s::probe
