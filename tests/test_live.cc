// Live ingest tests (DESIGN.md section 16): the watermark sidecar, the
// open-shard writer's durability protocol (bounded reads, crash + resume
// byte-identity), the incremental-vs-batch equivalence contract at every
// watermark, and the serving path's delta pickup — a daemon that never
// reloads yet converges on the same bytes a fresh batch load produces.
//
// One simulated deployment and one per-epoch record corpus are built
// once and shared across every test (the topology build is the
// expensive part).
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exec/pool.h"
#include "io/binrec.h"
#include "io/mmap_file.h"
#include "live/incremental.h"
#include "live/open_shard.h"
#include "live/watermark.h"
#include "obs/json.h"
#include "probe/campaign.h"
#include "simnet/network.h"
#include "svc/client.h"
#include "svc/dataset.h"
#include "svc/protocol.h"
#include "svc/server.h"

namespace s2s {
namespace {

/// Shared deployment + the ping campaign's records grouped by epoch, so
/// tests can replay any prefix/delta split without re-running campaigns.
struct LiveWorld {
  svc::DatasetConfig cfg;
  std::unique_ptr<simnet::Network> net;
  std::vector<std::pair<topology::ServerId, topology::ServerId>> pairs;
  std::vector<std::vector<probe::PingRecord>> epochs;
};

LiveWorld& world() {
  static LiveWorld* w = [] {
    auto* world = new LiveWorld;
    world->net =
        std::make_unique<simnet::Network>(svc::dataset_net_config(world->cfg));
    world->pairs = svc::fixture_pairs(world->net->topo(), 12);
    probe::PingCampaignConfig ping;
    ping.start_day = world->cfg.ping_start_day;
    ping.days = 2.0;  // 192 epochs at 15 minutes
    ping.interval_s = world->cfg.ping_interval_s;
    ping.seed = 31;
    std::vector<probe::PingRecord> current;
    ping.on_epoch = [world, &current](std::size_t) {
      world->epochs.push_back(std::move(current));
      current.clear();
    };
    probe::PingCampaign campaign(*world->net, ping, world->pairs);
    campaign.run([&](const probe::PingRecord& r) { current.push_back(r); });
    EXPECT_EQ(world->epochs.size(), 192u);
    return world;
  }();
  return *w;
}

std::string temp_path(const char* stem) {
  return ::testing::TempDir() + stem + "_" + std::to_string(::getpid()) +
         ".s2sb";
}

/// Writes epochs [0, upto) of the corpus, sealing each epoch.
std::unique_ptr<live::OpenShardWriter> write_epochs(
    const std::string& path, std::size_t upto, std::size_t block_records) {
  auto writer = std::make_unique<live::OpenShardWriter>(
      path, live::OpenShardConfig{block_records});
  EXPECT_TRUE(writer->ok()) << writer->error();
  std::string error;
  for (std::size_t e = 0; e < upto; ++e) {
    for (const auto& r : world().epochs[e]) writer->write(r);
    EXPECT_TRUE(writer->seal(static_cast<std::int64_t>(e), error)) << error;
  }
  return writer;
}

/// Appends epochs [from, upto) to an already-open writer, sealing each.
void append_epochs(live::OpenShardWriter& writer, std::size_t from,
                   std::size_t upto) {
  std::string error;
  for (std::size_t e = from; e < upto; ++e) {
    for (const auto& r : world().epochs[e]) writer.write(r);
    ASSERT_TRUE(writer.seal(static_cast<std::int64_t>(e), error)) << error;
  }
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

live::IncrementalConfig world_incremental_config() {
  live::IncrementalConfig inc;
  inc.start_day = world().cfg.ping_start_day;
  inc.interval_s = world().cfg.ping_interval_s;
  inc.detect = world().cfg.detect;
  inc.min_fraction = world().cfg.detect_min_fraction;
  return inc;
}

using Verdicts = std::vector<
    std::tuple<std::uint64_t, live::IncrementalState::Verdict>>;

Verdicts all_verdicts(const live::IncrementalState& state) {
  Verdicts out;
  state.for_each([&](std::uint32_t src, std::uint32_t dst, std::uint8_t fam,
                     const live::IncrementalState::Verdict& v) {
    out.emplace_back((std::uint64_t{src} << 40) | (std::uint64_t{dst} << 8) |
                         fam,
                     v);
  });
  return out;
}

/// Bit-exact verdict equality: the equivalence contract is byte
/// identity, so doubles compare with ==, not a tolerance.
void expect_verdicts_equal(const Verdicts& a, const Verdicts& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::get<0>(a[i]), std::get<0>(b[i]));
    const auto& va = std::get<1>(a[i]);
    const auto& vb = std::get<1>(b[i]);
    EXPECT_EQ(va.samples, vb.samples);
    EXPECT_EQ(va.missing_samples, vb.missing_samples);
    EXPECT_EQ(va.insufficient, vb.insufficient);
    EXPECT_EQ(va.variation_ms, vb.variation_ms);
    EXPECT_EQ(va.diurnal_ratio, vb.diurnal_ratio);
    EXPECT_EQ(va.high_variation, vb.high_variation);
    EXPECT_EQ(va.strong_diurnal, vb.strong_diurnal);
  }
}

TEST(LiveWatermark, SidecarRoundTrip) {
  const std::string path = temp_path("live_wm_roundtrip");
  live::Watermark wm;
  wm.sealed_bytes = 123456;
  wm.blocks = 77;
  wm.records = 4242;
  wm.epoch = 665;
  std::string error;
  ASSERT_TRUE(live::write_watermark_file(path, wm, error)) << error;
  live::Watermark back;
  EXPECT_EQ(live::read_watermark_file(path, back),
            live::WatermarkStatus::kValid);
  EXPECT_EQ(back, wm);
  EXPECT_TRUE(live::remove_watermark_file(path));
  EXPECT_EQ(live::read_watermark_file(path, back),
            live::WatermarkStatus::kAbsent);
  EXPECT_TRUE(live::remove_watermark_file(path));  // idempotent
}

TEST(LiveWatermark, CorruptSidecarFailsSafe) {
  const std::string path = temp_path("live_wm_corrupt");
  live::Watermark wm;
  wm.sealed_bytes = 1000;
  wm.epoch = 3;
  std::string error;
  ASSERT_TRUE(live::write_watermark_file(path, wm, error)) << error;

  // Flip one payload byte: the CRC must catch it.
  const std::string wm_path = live::watermark_path(path);
  std::string bytes = slurp(wm_path);
  ASSERT_EQ(bytes.size(), live::kWatermarkBytes);
  bytes[9] = static_cast<char>(bytes[9] ^ 0x40);
  { std::ofstream(wm_path, std::ios::binary) << bytes; }
  live::Watermark back;
  EXPECT_EQ(live::read_watermark_file(path, back),
            live::WatermarkStatus::kInvalid);

  // A truncated sidecar is equally invalid.
  { std::ofstream(wm_path, std::ios::binary) << bytes.substr(0, 20); }
  EXPECT_EQ(live::read_watermark_file(path, back),
            live::WatermarkStatus::kInvalid);
  live::remove_watermark_file(path);
}

TEST(LiveOpenShard, SealBoundsWhatReadersSee) {
  const std::string path = temp_path("live_shard_bound");
  auto writer = write_epochs(path, 4, 32);

  // Write epoch 4 WITHOUT sealing: the sidecar must still describe the
  // 4-epoch prefix, and a watermark-bounded read must decode exactly the
  // sealed records with no truncation or corruption.
  for (const auto& r : world().epochs[4]) writer->write(r);
  live::Watermark wm;
  ASSERT_EQ(live::read_watermark_file(path, wm),
            live::WatermarkStatus::kValid);
  EXPECT_EQ(wm.epoch, 3);
  std::size_t sealed_records = 0;
  for (std::size_t e = 0; e < 4; ++e) {
    sealed_records += world().epochs[e].size();
  }
  EXPECT_EQ(wm.records, sealed_records);

  io::MmapFile file;
  ASSERT_TRUE(file.open(path)) << file.error();
  ASSERT_GE(file.size(), wm.sealed_bytes);
  io::BinRecordMmapReader reader(file.data(),
                                 static_cast<std::size_t>(wm.sealed_bytes));
  ASSERT_TRUE(reader.ok()) << reader.error();
  std::size_t pings = 0;
  reader.read_all([](const probe::TracerouteRecord&) {},
                  [&](const probe::PingRecord&) { ++pings; });
  EXPECT_EQ(pings, sealed_records);
  EXPECT_EQ(reader.counters().corrupt_blocks, 0u);
  EXPECT_FALSE(reader.counters().truncated);

  std::string error;
  ASSERT_TRUE(writer->finish(error)) << error;
  std::remove(path.c_str());
  live::remove_watermark_file(path);
}

TEST(LiveOpenShard, CrashResumeIsByteIdenticalToUninterrupted) {
  const std::string crashed = temp_path("live_shard_crash");
  const std::string reference = temp_path("live_shard_ref");

  // Crash scenario: seal 5 epochs, then die mid-append — an unsealed
  // epoch of records plus a torn half-written block of garbage.
  {
    auto writer = write_epochs(crashed, 5, 32);
    for (const auto& r : world().epochs[5]) writer->write(r);
    // Abandon without seal/finish; the destructor may flush bytes past
    // the watermark, which is exactly the tail resume must discard.
  }
  {
    std::ofstream out(crashed, std::ios::binary | std::ios::app);
    out << "S2BKtorn-half-block-garbage";
  }

  // A reader bounded at the watermark never sees the torn tail.
  live::Watermark wm;
  ASSERT_EQ(live::read_watermark_file(crashed, wm),
            live::WatermarkStatus::kValid);
  EXPECT_EQ(wm.epoch, 4);
  {
    io::MmapFile file;
    ASSERT_TRUE(file.open(crashed)) << file.error();
    io::BinRecordMmapReader reader(file.data(),
                                   static_cast<std::size_t>(wm.sealed_bytes));
    ASSERT_TRUE(reader.ok()) << reader.error();
    std::size_t pings = 0;
    reader.read_all([](const probe::TracerouteRecord&) {},
                  [&](const probe::PingRecord&) { ++pings; });
    EXPECT_EQ(pings, wm.records);
    EXPECT_EQ(reader.counters().corrupt_blocks, 0u);
    EXPECT_FALSE(reader.counters().truncated);
  }

  // Resume truncates the tail and continues the stream; the finished
  // shard must be byte-identical to one written without the crash.
  std::string error;
  auto resumed =
      live::OpenShardWriter::resume(crashed, live::OpenShardConfig{32}, error);
  ASSERT_NE(resumed, nullptr) << error;
  EXPECT_EQ(resumed->watermark().epoch, 4);
  append_epochs(*resumed, 5, 8);
  ASSERT_TRUE(resumed->finish(error)) << error;

  auto ref = write_epochs(reference, 8, 32);
  ASSERT_TRUE(ref->finish(error)) << error;

  EXPECT_EQ(slurp(crashed), slurp(reference));
  EXPECT_EQ(resumed->watermark(), ref->watermark());

  std::remove(crashed.c_str());
  std::remove(reference.c_str());
  live::remove_watermark_file(crashed);
  live::remove_watermark_file(reference);
}

TEST(LiveOpenShard, ResumeRefusesDamagedPrefix) {
  const std::string path = temp_path("live_shard_damaged");
  { write_epochs(path, 3, 32); }
  // Corrupt a byte INSIDE the sealed prefix: that tail recovery cannot
  // reach, so resume must refuse rather than re-serve damaged blocks.
  std::string bytes = slurp(path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  { std::ofstream(path, std::ios::binary) << bytes; }
  std::string error;
  auto resumed =
      live::OpenShardWriter::resume(path, live::OpenShardConfig{32}, error);
  EXPECT_EQ(resumed, nullptr);
  EXPECT_FALSE(error.empty());
  std::remove(path.c_str());
  live::remove_watermark_file(path);
}

TEST(LiveIncremental, MatchesBatchRefoldAtEveryWatermark) {
  const auto inc = world_incremental_config();
  live::IncrementalState streaming(inc);
  exec::ThreadPool pool8(8);

  for (std::size_t e = 0; e < world().epochs.size(); ++e) {
    for (const auto& r : world().epochs[e]) streaming.add(r);
    streaming.advance_watermark(static_cast<std::int64_t>(e));
    // Bit-exact refold check at a sample of watermarks (every 16th and
    // the last) to keep the quadratic refold affordable.
    if (e % 16 != 15 && e + 1 != world().epochs.size()) continue;
    live::IncrementalState batch(inc);
    for (std::size_t b = 0; b <= e; ++b) {
      for (const auto& r : world().epochs[b]) batch.add(r);
    }
    batch.advance_watermark(static_cast<std::int64_t>(e));
    EXPECT_EQ(streaming.records_folded(), batch.records_folded());
    expect_verdicts_equal(all_verdicts(streaming), all_verdicts(batch));

    // Aggregates are thread-width independent (1 vs 8 threads).
    const auto seq = streaming.summarize(nullptr);
    const auto par = streaming.summarize(&pool8);
    EXPECT_EQ(seq.pairs, par.pairs);
    EXPECT_EQ(seq.assessed, par.assessed);
    EXPECT_EQ(seq.high_variation, par.high_variation);
    EXPECT_EQ(seq.consistent, par.consistent);
  }
  EXPECT_GT(streaming.pairs_tracked(), 0u);
}

TEST(LiveIncremental, CopyThenFoldEqualsSequentialFold) {
  // The delta-pickup primitive: clone the published state, fold the
  // delta into the clone — must equal folding everything sequentially.
  const auto inc = world_incremental_config();
  const std::size_t split = world().epochs.size() / 2;
  live::IncrementalState prefix(inc);
  for (std::size_t e = 0; e < split; ++e) {
    for (const auto& r : world().epochs[e]) prefix.add(r);
    prefix.advance_watermark(static_cast<std::int64_t>(e));
  }
  live::IncrementalState clone(prefix);
  for (std::size_t e = split; e < world().epochs.size(); ++e) {
    for (const auto& r : world().epochs[e]) clone.add(r);
    clone.advance_watermark(static_cast<std::int64_t>(e));
  }
  live::IncrementalState full(inc);
  for (std::size_t e = 0; e < world().epochs.size(); ++e) {
    for (const auto& r : world().epochs[e]) full.add(r);
    full.advance_watermark(static_cast<std::int64_t>(e));
  }
  EXPECT_EQ(clone.records_folded(), full.records_folded());
  expect_verdicts_equal(all_verdicts(clone), all_verdicts(full));
}

/// Verdict responses for every ping pair, via the public execute path.
std::vector<std::string> verdict_payloads(const svc::Dataset& ds) {
  std::vector<std::string> out;
  for (const auto& pk : ds.ping_pairs()) {
    svc::PairQuery q;
    q.src = pk.src;
    q.dst = pk.dst;
    q.family = pk.family;
    const auto resp = ds.execute(svc::MsgType::kCongestionVerdict,
                                 svc::encode_pair_query(q), nullptr);
    EXPECT_EQ(resp.type, svc::MsgType::kOk) << resp.payload;
    out.push_back(resp.payload);
  }
  return out;
}

TEST(LiveDataset, DeltaPickupMatchesFreshLoadByteForByte) {
  const std::string path = temp_path("live_ds_pickup");
  auto writer = write_epochs(path, 96, 256);

  svc::DatasetConfig cfg = world().cfg;
  cfg.archive_path = path;
  auto base = std::make_shared<svc::Dataset>(cfg, world().net.get());
  std::string error;
  ASSERT_TRUE(base->load(error)) << error;
  ASSERT_TRUE(base->live());
  EXPECT_EQ(base->watermark().epoch, 95);

  // Unchanged watermark: clone_advanced is a clean no-op, not an error.
  auto unchanged = base->clone_advanced(error);
  EXPECT_EQ(unchanged, nullptr);
  EXPECT_TRUE(error.empty());

  append_epochs(*writer, 96, 160);
  auto advanced = base->clone_advanced(error);
  ASSERT_NE(advanced, nullptr) << error;
  EXPECT_EQ(advanced->watermark().epoch, 159);
  EXPECT_EQ(advanced->ping_epochs(), 160u);

  // The clone (prefix load + delta fold) must serve the same bytes as a
  // from-scratch load of the same watermark, including the cache digest.
  auto fresh = std::make_shared<svc::Dataset>(cfg, world().net.get());
  ASSERT_TRUE(fresh->load(error)) << error;
  EXPECT_EQ(advanced->digest(), fresh->digest());
  EXPECT_EQ(verdict_payloads(*advanced), verdict_payloads(*fresh));

  // Growth states never share a digest (the ResultCache satellite).
  EXPECT_NE(base->digest(), advanced->digest());

  // A rewritten (regressed) shard is an error, not a silent pickup.
  auto rewound = write_epochs(path, 8, 256);
  auto bad = advanced->clone_advanced(error);
  EXPECT_EQ(bad, nullptr);
  EXPECT_FALSE(error.empty());

  std::remove(path.c_str());
  live::remove_watermark_file(path);
}

TEST(LiveDataset, DamagedSidecarRefusesLoad) {
  const std::string path = temp_path("live_ds_badwm");
  write_epochs(path, 4, 256);
  const std::string wm_path = live::watermark_path(path);
  std::string bytes = slurp(wm_path);
  bytes[12] = static_cast<char>(bytes[12] ^ 0x08);
  { std::ofstream(wm_path, std::ios::binary) << bytes; }

  svc::DatasetConfig cfg = world().cfg;
  cfg.archive_path = path;
  svc::Dataset ds(cfg, world().net.get());
  std::string error;
  EXPECT_FALSE(ds.load(error));
  EXPECT_NE(error.find("watermark"), std::string::npos) << error;

  std::remove(path.c_str());
  live::remove_watermark_file(path);
}

TEST(LiveServer, ServesAcrossDeltaPickupsWithoutReload) {
  const std::string path = temp_path("live_srv_pickup");
  auto writer = write_epochs(path, 64, 256);

  svc::DatasetConfig cfg = world().cfg;
  cfg.archive_path = path;
  svc::Dataset dataset(cfg, world().net.get());
  std::string error;
  ASSERT_TRUE(dataset.load(error)) << error;

  exec::ThreadPool pool(2);
  svc::ServerConfig server_cfg;
  server_cfg.live_poll_ms = 5;
  svc::Server server(dataset, &pool, server_cfg);
  ASSERT_TRUE(server.start(error)) << error;
  std::thread serve_thread([&] { server.serve(); });

  auto live_status = [&](std::int64_t* epoch_out) {
    svc::Client client;
    std::string err;
    EXPECT_TRUE(client.connect("127.0.0.1", server.port(), err)) << err;
    svc::MsgType rtype;
    std::string payload;
    EXPECT_TRUE(client.call(svc::MsgType::kLiveStatus, 0, "", &rtype,
                            &payload, err))
        << err;
    EXPECT_EQ(rtype, svc::MsgType::kOk) << payload;
    const auto root = obs::json::parse(payload);
    ASSERT_TRUE(root && root->is_object());
    const auto* wm = root->find("watermark_epoch");
    ASSERT_TRUE(wm && wm->is_number());
    *epoch_out = static_cast<std::int64_t>(wm->number);
  };

  std::int64_t epoch = -1;
  live_status(&epoch);
  EXPECT_EQ(epoch, 63);

  // Append while the server runs; the poller must pick the delta up with
  // no SIGHUP and no restart.
  append_epochs(*writer, 64, 192);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (epoch != 191 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    live_status(&epoch);
  }
  EXPECT_EQ(epoch, 191);
  EXPECT_GE(server.live_pickups(), 1u);

  // Served verdicts at the final watermark match a fresh batch-load of
  // the same shard byte for byte.
  svc::Dataset fresh(cfg, world().net.get());
  ASSERT_TRUE(fresh.load(error)) << error;
  const auto expected = verdict_payloads(fresh);
  std::size_t i = 0;
  for (const auto& pk : fresh.ping_pairs()) {
    svc::PairQuery q;
    q.src = pk.src;
    q.dst = pk.dst;
    q.family = pk.family;
    svc::Client client;
    std::string err;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), err)) << err;
    svc::MsgType rtype;
    std::string payload;
    ASSERT_TRUE(client.call(svc::MsgType::kCongestionVerdict, 0,
                            svc::encode_pair_query(q), &rtype, &payload, err))
        << err;
    EXPECT_EQ(rtype, svc::MsgType::kOk) << payload;
    EXPECT_EQ(payload, expected[i]) << "pair index " << i;
    ++i;
  }

  server.request_drain();
  serve_thread.join();
  std::remove(path.c_str());
  live::remove_watermark_file(path);
}

}  // namespace
}  // namespace s2s
