#include "net/ip.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

namespace s2s::net {
namespace {

TEST(IPv4Addr, ParsesDottedQuad) {
  const auto a = IPv4Addr::parse("192.0.2.17");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->value(), 0xC0000211u);
  EXPECT_EQ(a->to_string(), "192.0.2.17");
}

TEST(IPv4Addr, ParsesBoundaries) {
  EXPECT_EQ(IPv4Addr::parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(IPv4Addr::parse("255.255.255.255")->value(), 0xFFFFFFFFu);
}

TEST(IPv4Addr, RejectsMalformed) {
  EXPECT_FALSE(IPv4Addr::parse(""));
  EXPECT_FALSE(IPv4Addr::parse("1.2.3"));
  EXPECT_FALSE(IPv4Addr::parse("1.2.3.4.5"));
  EXPECT_FALSE(IPv4Addr::parse("256.0.0.1"));
  EXPECT_FALSE(IPv4Addr::parse("1.2.3.x"));
  EXPECT_FALSE(IPv4Addr::parse("01.2.3.4"));  // ambiguous leading zero
  EXPECT_FALSE(IPv4Addr::parse("1..2.3"));
  EXPECT_FALSE(IPv4Addr::parse(" 1.2.3.4"));
  EXPECT_FALSE(IPv4Addr::parse("1.2.3.4 "));
}

TEST(IPv4Addr, OrderingMatchesNumericValue) {
  EXPECT_LT(IPv4Addr(1, 2, 3, 4), IPv4Addr(1, 2, 3, 5));
  EXPECT_LT(IPv4Addr(9, 255, 255, 255), IPv4Addr(10, 0, 0, 0));
}

TEST(IPv6Addr, ParsesFullForm) {
  const auto a = IPv6Addr::parse("2001:db8:0:0:0:0:0:1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->hi(), 0x20010db800000000ULL);
  EXPECT_EQ(a->lo(), 1u);
}

TEST(IPv6Addr, ParsesCompressedForm) {
  const auto a = IPv6Addr::parse("2001:db8::1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->hi(), 0x20010db800000000ULL);
  EXPECT_EQ(a->lo(), 1u);
  EXPECT_EQ(IPv6Addr::parse("::")->hi(), 0u);
  EXPECT_EQ(IPv6Addr::parse("::")->lo(), 0u);
  EXPECT_EQ(IPv6Addr::parse("::1")->lo(), 1u);
  EXPECT_EQ(IPv6Addr::parse("fe80::")->hi(), 0xfe80000000000000ULL);
}

TEST(IPv6Addr, RejectsMalformed) {
  EXPECT_FALSE(IPv6Addr::parse(""));
  EXPECT_FALSE(IPv6Addr::parse(":::"));
  EXPECT_FALSE(IPv6Addr::parse("1:2:3:4:5:6:7"));       // too short, no gap
  EXPECT_FALSE(IPv6Addr::parse("1:2:3:4:5:6:7:8:9"));   // too long
  EXPECT_FALSE(IPv6Addr::parse("1::2::3"));             // two gaps
  EXPECT_FALSE(IPv6Addr::parse("12345::"));             // group too wide
  EXPECT_FALSE(IPv6Addr::parse("g::1"));                // bad hex
}

// RFC 5952 canonical text: longest zero run compressed, lower case.
struct V6Case {
  const char* input;
  const char* canonical;
};
class IPv6Canonical : public ::testing::TestWithParam<V6Case> {};

TEST_P(IPv6Canonical, RoundTrips) {
  const auto& c = GetParam();
  const auto a = IPv6Addr::parse(c.input);
  ASSERT_TRUE(a.has_value()) << c.input;
  EXPECT_EQ(a->to_string(), c.canonical);
  // Canonical text parses back to the same address.
  const auto b = IPv6Addr::parse(a->to_string());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, *b);
}

INSTANTIATE_TEST_SUITE_P(
    Rfc5952, IPv6Canonical,
    ::testing::Values(
        V6Case{"2001:db8:0:0:0:0:0:1", "2001:db8::1"},
        V6Case{"2001:0db8:0000:0001:0000:0000:0000:0001", "2001:db8:0:1::1"},
        V6Case{"0:0:0:0:0:0:0:0", "::"},
        V6Case{"0:0:0:0:0:0:0:1", "::1"},
        V6Case{"1:0:0:2:0:0:0:3", "1:0:0:2::3"},   // longest run wins
        V6Case{"fe80:0:0:0:1:0:0:1", "fe80::1:0:0:1"},
        V6Case{"1:2:3:4:5:6:7:8", "1:2:3:4:5:6:7:8"},
        V6Case{"0:1:0:1:0:1:0:1", "0:1:0:1:0:1:0:1"}));  // no run >= 2

TEST(IPAddr, DispatchesByFamily) {
  const auto v4 = IPAddr::parse("10.1.2.3");
  const auto v6 = IPAddr::parse("2001:db8::42");
  ASSERT_TRUE(v4 && v6);
  EXPECT_TRUE(v4->is_v4());
  EXPECT_TRUE(v6->is_v6());
  EXPECT_EQ(v4->family(), Family::kIPv4);
  EXPECT_EQ(v6->family(), Family::kIPv6);
  EXPECT_EQ(v4->to_string(), "10.1.2.3");
  EXPECT_EQ(v6->to_string(), "2001:db8::42");
}

TEST(IPAddr, HashDistinguishesAddresses) {
  std::unordered_set<IPAddr> set;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    set.insert(IPAddr(IPv4Addr(i)));
    set.insert(IPAddr(IPv6Addr::from_halves(0x2001, i)));
  }
  EXPECT_EQ(set.size(), 2000u);
}

TEST(IPAddr, TotalOrderIsStrict) {
  std::set<IPAddr> set{IPAddr(IPv4Addr(5)), IPAddr(IPv4Addr(1)),
                       IPAddr(IPv6Addr::from_halves(0, 1))};
  EXPECT_EQ(set.size(), 3u);
}

}  // namespace
}  // namespace s2s::net
