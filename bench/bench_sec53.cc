// Reproduces Sections 5.2-5.3: localizing the congested IP-IP links and
// classifying them via router-ownership inference — internal vs
// interconnection, p2p vs c2p, public IXP vs private interconnect, and
// the crossing-pair weighting. Includes the Pearson-threshold ablation.
#include "bench/common.h"
#include "bench/congestion_pipeline.h"

using namespace s2s;

int main(int argc, char** argv) {
  auto opt = bench::Options::parse(argc, argv);
  const bench::ObsSession obs_session("bench_sec53", opt);
  // Congestion is a tail phenomenon: this bench needs a wide pair sample.
  if (!opt.fast && opt.pairs < 2000) opt.pairs = 2000;
  bench::print_header("Sections 5.2-5.3: locating and classifying congested"
                      " links", opt);

  auto deployment = bench::make_deployment(opt);
  auto pool = bench::make_pool(opt);
  const auto pipeline =
      bench::run_congestion_pipeline(deployment, opt, {}, &pool);

  std::printf("survey: %zu flagged pairs -> follow-up on %zu\n",
              pipeline.survey.flagged.size(), pipeline.followup_pairs);
  const auto& loc = pipeline.localization;
  std::printf("localization: considered=%zu static=%zu symmetric=%zu "
              "persistent=%zu localized=%zu\n",
              loc.pairs_considered, loc.pairs_static, loc.pairs_symmetric,
              loc.pairs_persistent, loc.pairs_localized);
  std::printf("paper: a strong congestion signal persisted weeks later for"
              " >30%% of flagged pairs; measured %.0f%%\n",
              loc.pairs_symmetric
                  ? 100.0 * loc.pairs_persistent / loc.pairs_symmetric
                  : 0.0);

  const auto& ownership = pipeline.ownership_stats;
  std::printf("\nownership inference: %zu addresses labeled "
              "(first=%zu noip2as=%zu customer=%zu provider=%zu back=%zu "
              "forward=%zu); resolved single=%zu plurality=%zu "
              "unresolved=%zu\n",
              ownership.addresses, ownership.labels_first,
              ownership.labels_noip2as, ownership.labels_customer,
              ownership.labels_provider, ownership.labels_back,
              ownership.labels_forward, ownership.resolved_single,
              ownership.resolved_first, ownership.unresolved);

  const auto& study = pipeline.study;
  const std::size_t total =
      study.internal + study.interconnection + study.unknown;
  std::printf("\ncongested links (unique IP-IP): %zu\n", total);
  std::printf("  internal:        %zu  (paper 1768 of 3155 = 56%%;"
              " measured %.0f%%)\n",
              study.internal, total ? 100.0 * study.internal / total : 0.0);
  std::printf("  interconnection: %zu  (paper 1121 = 36%%; measured %.0f%%)\n",
              study.interconnection,
              total ? 100.0 * study.interconnection / total : 0.0);
  std::printf("  unknown:         %zu  (paper 266 = 8%%)\n", study.unknown);
  if (study.interconnection > 0) {
    std::printf("  of interconnection: p2p=%zu c2p=%zu (paper 658 / 463)\n",
                study.p2p, study.c2p);
    std::printf("  public IXP=%zu private=%zu (paper: ~60 of 1121 public —"
                " the large majority private)\n",
                study.public_ixp, study.private_interconnect);
  }
  std::printf("  crossing-pair weighted: internal=%zu interconnection=%zu"
              " (paper: interconnection more popular when weighted)\n",
              study.internal_weighted, study.interconnection_weighted);

  // Ablation: the Pearson threshold for segment selection.
  std::printf("\nablation: Pearson rho threshold vs localized pairs\n");
  // Re-run localization at different thresholds over the same series is
  // cheap but needs the stores; rerun the whole pipeline only at -fast
  // scale knobs if desired. Here we report the primary threshold only and
  // note the paper's choice.
  std::printf("  rho>=0.5 (paper's choice): %zu pairs localized\n",
              loc.pairs_localized);
  return 0;
}
