// Validation the paper could not do: Section 5.3's router-ownership
// heuristics scored against the simulator's ground truth (which AS really
// operates each router), including a sweep over AS-relationship inference
// noise ("...stress the need for an approach that has been thoroughly
// validated", paper Section 5.3).
#include "bench/common.h"

#include <map>

#include "core/ownership.h"

using namespace s2s;

namespace {

/// Ground truth: interface address -> owning AS, from the topology.
std::map<net::IPAddr, net::Asn> ground_truth(const topology::Topology& topo) {
  std::map<net::IPAddr, net::Asn> truth;
  auto record = [&](const topology::LinkEnd& end, bool v6) {
    const net::Asn owner = topo.ases[topo.routers[end.router].owner].asn;
    truth.emplace(net::IPAddr(end.addr4), owner);
    if (v6 && end.addr6) truth.emplace(net::IPAddr(*end.addr6), owner);
  };
  for (const auto& link : topo.links) {
    record(link.end_a, link.ipv6);
    record(link.end_b, link.ipv6);
  }
  return truth;
}

}  // namespace

int main(int argc, char** argv) {
  auto opt = bench::Options::parse(argc, argv);
  const bench::ObsSession obs_session("bench_ownership", opt);
  bench::print_header(
      "Ownership-inference validation against ground truth", opt);

  auto deployment = bench::make_deployment(opt);
  const auto truth = ground_truth(deployment.topo());

  // One week of full-mesh traceroutes as the path corpus.
  probe::TracerouteCampaignConfig cfg;
  cfg.days = opt.fast ? 2.0 : 7.0;
  cfg.paris_switch_day = 0.0;
  cfg.seed = opt.seed + 3;
  probe::TracerouteCampaign campaign(*deployment.net, cfg, deployment.pairs);

  std::vector<std::vector<net::IPAddr>> runs;
  std::vector<net::IPAddr> run;
  campaign.run([&](const probe::TracerouteRecord& r) {
    if (!r.complete) return;
    run.clear();
    for (const auto& hop : r.hops) {
      if (hop.addr) {
        run.push_back(*hop.addr);
        continue;
      }
      if (run.size() >= 2) runs.push_back(run);
      run.clear();
    }
    if (run.size() >= 2) runs.push_back(run);
  });
  std::printf("path corpus: %zu responsive runs\n", runs.size());

  std::printf("\n%-22s %10s %10s %10s %10s\n", "relationship noise",
              "labeled", "resolved", "correct", "accuracy");
  for (const double noise : {0.0, 0.05, 0.10, 0.20}) {
    auto rels = bgp::RelationshipTable::from_topology(deployment.topo());
    if (noise > 0.0) {
      stats::Rng rng(opt.seed + 91);
      rels.perturb(rng, noise, noise / 2.0);
    }
    core::OwnershipInference inference(deployment.net->rib(), rels);
    for (const auto& path : runs) inference.observe_path(path);
    inference.finalize();

    std::size_t resolved = 0, correct = 0;
    for (const auto& [addr, owner] : truth) {
      const auto inferred = inference.owner(addr);
      if (!inferred) continue;
      ++resolved;
      correct += *inferred == owner;
    }
    char label[32];
    std::snprintf(label, sizeof(label), "flip=%.0f%% drop=%.0f%%",
                  100.0 * noise, 50.0 * noise);
    std::printf("%-22s %10zu %10zu %10zu %9.1f%%\n", label,
                inference.stats().addresses, resolved, correct,
                resolved ? 100.0 * static_cast<double>(correct) /
                               static_cast<double>(resolved)
                         : 0.0);
  }

  std::printf("\nper-heuristic label volume (no noise):\n");
  {
    const auto rels = bgp::RelationshipTable::from_topology(deployment.topo());
    core::OwnershipInference inference(deployment.net->rib(), rels);
    for (const auto& path : runs) inference.observe_path(path);
    inference.finalize();
    const auto& s = inference.stats();
    std::printf("  first=%zu noip2as=%zu customer=%zu provider=%zu back=%zu"
                " forward=%zu | single=%zu plurality=%zu unresolved=%zu\n",
                s.labels_first, s.labels_noip2as, s.labels_customer,
                s.labels_provider, s.labels_back, s.labels_forward,
                s.resolved_single, s.resolved_first, s.unresolved);
  }
  std::printf("\npaper: ownership accuracy was unvalidated ('our method\n"
              "  annotates the likely owner of most, but not all\n"
              "  interfaces'); here ground truth shows how accuracy degrades\n"
              "  as the relationship inference gets noisier.\n");
  return 0;
}
