// Reproduces Figure 6: per timeline, the summed prevalence of sub-optimal
// AS paths that raise the baseline RTT by at least 20/50/100 ms, as an
// ECDF over timelines (both protocols).
#include "bench/common.h"

#include "core/routing_study.h"

using namespace s2s;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  const bench::ObsSession obs_session("bench_fig6", opt);
  bench::print_header("Figure 6: prevalence of sub-optimal AS paths", opt);

  auto deployment = bench::make_deployment(opt);
  const auto store = bench::run_long_term(deployment, opt);
  auto pool = bench::make_pool(opt);
  core::RoutingStudyConfig cfg;
  cfg.min_observations = bench::qualifying_observations(opt);
  const auto study = core::run_routing_study(store, cfg, &pool);

  for (const net::Family fam : {net::Family::kIPv4, net::Family::kIPv6}) {
    const auto& f = study.of(fam);
    std::printf("\n--- %s (%zu timelines) ---\n",
                net::to_string(fam).data(), f.timelines);
    for (std::size_t k = 0; k < cfg.suboptimal_thresholds_ms.size(); ++k) {
      std::vector<double> sums;
      sums.reserve(f.suboptimal_prevalence.size());
      for (const auto& per_timeline : f.suboptimal_prevalence) {
        sums.push_back(per_timeline[k]);
      }
      const stats::Ecdf ecdf(sums);
      std::printf("RTT inc. >= %3.0f ms: prevalence p90=%.2f p99=%.2f ; "
                  "timelines with prevalence >= 0.2: %.1f%%, >= 0.3: %.1f%%\n",
                  cfg.suboptimal_thresholds_ms[k], ecdf.quantile(0.9),
                  ecdf.quantile(0.99), 100.0 * ecdf.tail_at_least(0.2),
                  100.0 * ecdf.tail_at_least(0.3));
    }
  }
  std::printf(
      "\npaper: for 10%% of IPv4 timelines, >=20 ms sub-optimal paths held\n"
      "  for >=30%% of the study (>=50%% over IPv6); 1.1%% (v4) / 1.3%% (v6)\n"
      "  of timelines spent >=20%% / >=40%% of the study on paths that were\n"
      "  >=100 ms worse.\n");
  return 0;
}
