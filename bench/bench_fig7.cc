// Reproduces Figure 7: short-term sanity check. A 22-day 30-minute
// campaign's best-path percentile deltas, computed from all traceroutes
// vs from a 3-hour subsample, should be nearly identical — showing the
// long-term data set's coarse cadence does not bias Section 4.2.
#include "bench/common.h"

#include "core/routing_study.h"

using namespace s2s;

int main(int argc, char** argv) {
  auto opt = bench::Options::parse(argc, argv);
  const bench::ObsSession obs_session("bench_fig7", opt);
  bench::print_header("Figure 7: 30-minute vs 3-hour sampling", opt);

  auto deployment = bench::make_deployment(opt);
  probe::TracerouteCampaignConfig cfg;
  cfg.start_day = 434.0;  // paper: March 10-31, 2015
  cfg.days = opt.fast ? 8.0 : 22.0;
  cfg.interval_s = net::kThirtyMinutes;
  cfg.paris_switch_day = 0.0;  // Paris era
  cfg.seed = opt.seed + 21;
  probe::TracerouteCampaign campaign(*deployment.net, cfg, deployment.pairs);

  // Two stores fed from the same record stream: every traceroute, and the
  // 3-hour subsample (1 of every 6 epochs).
  core::TimelineStore all(deployment.topo(), deployment.net->rib(),
                          {cfg.start_day, net::kThirtyMinutes});
  core::TimelineStore coarse(deployment.topo(), deployment.net->rib(),
                             {cfg.start_day, net::kThirtyMinutes});
  campaign.run([&](const probe::TracerouteRecord& r) {
    all.add(r);
    const auto rel = r.time.seconds() -
                     static_cast<std::int64_t>(cfg.start_day * 86400.0);
    if (rel % net::kThreeHours == 0) coarse.add(r);
  });

  auto pool = bench::make_pool(opt);
  core::RoutingStudyConfig study_cfg;
  study_cfg.min_observations = 40;
  const auto study_all = core::run_routing_study(all, study_cfg, &pool);
  core::RoutingStudyConfig coarse_cfg;
  coarse_cfg.min_observations = 8;
  const auto study_coarse = core::run_routing_study(coarse, coarse_cfg, &pool);

  auto show = [](const char* label, const std::vector<double>& d10,
                 const std::vector<double>& d90) {
    if (d10.empty()) {
      std::printf("%s: no sub-optimal buckets at this scale\n", label);
      return;
    }
    const stats::Ecdf e10(d10), e90(d90);
    std::printf("%s: d10 p50=%.1f p80=%.1f p90=%.1f | d90 p50=%.1f p80=%.1f"
                " p90=%.1f\n",
                label, e10.quantile(0.5), e10.quantile(0.8), e10.quantile(0.9),
                e90.quantile(0.5), e90.quantile(0.8), e90.quantile(0.9));
  };
  show("IPv4 All (30 min)", study_all.v4.delta_p10_ms,
       study_all.v4.delta_p90_ms);
  show("IPv4 3hr subsample", study_coarse.v4.delta_p10_ms,
       study_coarse.v4.delta_p90_ms);
  show("IPv6 All (30 min)", study_all.v6.delta_p10_ms,
       study_all.v6.delta_p90_ms);
  show("IPv6 3hr subsample", study_coarse.v6.delta_p10_ms,
       study_coarse.v6.delta_p90_ms);

  std::printf("\npaper: the 'All' and '3hr' ECDFs nearly coincide, so the\n"
              "  long-term data set's 3-hour cadence does not distort the\n"
              "  Section 4.2 percentile-difference analysis.\n");
  return 0;
}
