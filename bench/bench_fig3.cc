// Reproduces Figure 3: (a) ECDF of the prevalence of each timeline's most
// popular AS path and (b) ECDF of routing changes per timeline.
#include "bench/common.h"

#include "core/routing_study.h"

using namespace s2s;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  const bench::ObsSession obs_session("bench_fig3", opt);
  bench::print_header("Figure 3: path prevalence and change frequency", opt);

  auto deployment = bench::make_deployment(opt);
  const auto store = bench::run_long_term(deployment, opt);
  auto pool = bench::make_pool(opt);
  core::RoutingStudyConfig cfg;
  cfg.min_observations = bench::qualifying_observations(opt);
  const auto study = core::run_routing_study(store, cfg, &pool);

  bench::print_ecdf("Fig 3a IPv4: prevalence of most popular AS path",
                    stats::Ecdf(study.v4.popular_prevalence));
  bench::print_ecdf("Fig 3a IPv6: prevalence of most popular AS path",
                    stats::Ecdf(study.v6.popular_prevalence));
  bench::print_ecdf("Fig 3b IPv4: routing changes per timeline",
                    stats::Ecdf(study.v4.changes));
  bench::print_ecdf("Fig 3b IPv6: routing changes per timeline",
                    stats::Ecdf(study.v6.changes));

  const stats::Ecdf prev4(study.v4.popular_prevalence);
  const stats::Ecdf prev6(study.v6.popular_prevalence);
  const stats::Ecdf ch4(study.v4.changes), ch6(study.v6.changes);
  std::printf("\npaper vs measured:\n");
  std::printf("  dominant path holds >=50%% of the time for 80%% of"
              " timelines; measured p20 prevalence = %.2f (v4) / %.2f (v6)\n",
              prev4.quantile(0.2), prev6.quantile(0.2));
  std::printf("  no change over the whole study: paper 18%% (v4) / 16%% (v6);"
              " measured %.0f%% / %.0f%%\n",
              100.0 * ch4.at(0.0), 100.0 * ch6.at(0.0));
  std::printf("  90%% of timelines see <=30 changes; measured p90 = %.0f (v4)"
              " / %.0f (v6)\n",
              ch4.quantile(0.9), ch6.quantile(0.9));
  std::printf("  (change counts scale with campaign length: %.0f days here"
              " vs the paper's 485)\n", opt.days);
  return 0;
}
