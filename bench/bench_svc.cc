// bench_svc — closed-loop load generator for the s2sd query daemon.
//
// Starts an in-process server on an ephemeral port over a generated
// fixture archive, then drives it from N client connections, each
// looping a mixed workload (figure digests dominate, so the cold
// numbers measure real analysis work, not framing overhead):
//
//   cold phase: every request carries kFlagNoCache, so the server
//     executes the analysis each time (results are still inserted);
//   warm phase: the same workload without the flag — all cache hits.
//
// Prints a JSON document with requests/sec and client-observed p50/p99
// latency for both phases plus the cache counters, and writes the same
// document to BENCH_svc.json (override with --report PATH, disable with
// --no-report). The warm/cold p50 ratio is the headline: the acceptance
// bar is warm p50 at least 5x lower than cold p50.
//
//   bench_svc [--fast] [--connections N] [--warm-rounds N]
//             [--threads N] [--report PATH] [--no-report]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "exec/pool.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "stats/summary.h"
#include "svc/client.h"
#include "svc/dataset.h"
#include "svc/server.h"

namespace {

using Clock = std::chrono::steady_clock;

struct Request {
  s2s::svc::MsgType type;
  std::string payload;
};

struct PhaseResult {
  std::vector<double> latencies_us;
  double wall_s = 0.0;
  std::size_t errors = 0;

  double requests_per_sec() const {
    return wall_s > 0.0 ? static_cast<double>(latencies_us.size()) / wall_s
                        : 0.0;
  }
};

PhaseResult run_phase(const char* host, std::uint16_t port,
                      const std::vector<Request>& workload,
                      std::size_t connections, std::size_t rounds,
                      std::uint8_t flags) {
  std::vector<std::vector<double>> lat(connections);
  std::vector<std::size_t> errors(connections, 0);
  std::vector<std::thread> threads;
  const auto t0 = Clock::now();
  for (std::size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      s2s::svc::Client client;
      std::string error;
      if (!client.connect(host, port, error, /*timeout_ms=*/60000)) {
        ++errors[c];
        return;
      }
      for (std::size_t r = 0; r < rounds; ++r) {
        for (const Request& req : workload) {
          s2s::svc::MsgType rtype;
          std::string rpayload;
          const auto q0 = Clock::now();
          if (!client.call(req.type, flags, req.payload, &rtype, &rpayload,
                           error) ||
              rtype != s2s::svc::MsgType::kOk) {
            ++errors[c];
            continue;
          }
          lat[c].push_back(
              std::chrono::duration<double, std::micro>(Clock::now() - q0)
                  .count());
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  PhaseResult out;
  out.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  for (auto& v : lat) {
    out.latencies_us.insert(out.latencies_us.end(), v.begin(), v.end());
  }
  for (const std::size_t e : errors) out.errors += e;
  return out;
}

void phase_json(s2s::obs::json::Writer& w, const char* name,
                const PhaseResult& r) {
  w.key(name).begin_object();
  w.key("requests").value(static_cast<std::uint64_t>(r.latencies_us.size()));
  w.key("errors").value(static_cast<std::uint64_t>(r.errors));
  w.key("wall_s").value(r.wall_s);
  w.key("requests_per_sec").value(r.requests_per_sec());
  w.key("p50_us").value(s2s::stats::quantile(r.latencies_us, 0.50));
  w.key("p99_us").value(s2s::stats::quantile(r.latencies_us, 0.99));
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace s2s;

  std::size_t connections = 4;
  std::size_t warm_rounds = 4;
  int threads = 0;
  bool fast = false;
  bool want_report = true;
  std::string report_path = "BENCH_svc.json";

  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (!std::strcmp(argv[i], "--connections")) {
      connections = static_cast<std::size_t>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--warm-rounds")) {
      warm_rounds = static_cast<std::size_t>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--threads")) {
      threads = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--fast")) {
      fast = true;
    } else if (!std::strcmp(argv[i], "--report")) {
      report_path = next();
    } else if (!std::strcmp(argv[i], "--no-report")) {
      want_report = false;
    }
  }
  if (fast) {
    connections = 2;
    warm_rounds = 2;
  }
  if (connections == 0) connections = 1;

  obs::MetricsRegistry::global().reset();

  svc::DatasetConfig cfg;
  cfg.archive_path = "bench_svc_fixture.s2sb";
  svc::FixtureParams params;
  if (fast) {
    params.trace_days = 7.0;
    params.ping_days = 3.0;
    params.max_trace_pairs = 6;
    params.max_ping_pairs = 24;
  }
  std::string error;
  std::printf("bench_svc: writing fixture %s\n", cfg.archive_path.c_str());
  if (!svc::write_fixture_archive(cfg.archive_path, cfg, params, error)) {
    std::fprintf(stderr, "bench_svc: fixture write failed: %s\n",
                 error.c_str());
    return 1;
  }

  svc::Dataset dataset(cfg);
  if (!dataset.load(error)) {
    std::fprintf(stderr, "bench_svc: load failed: %s\n", error.c_str());
    return 1;
  }

  exec::ThreadPool pool(threads > 0 ? static_cast<unsigned>(threads) : 0u);
  svc::ServerConfig server_cfg;
  server_cfg.max_inflight = 1024;  // closed-loop clients, no shedding
  svc::Server server(dataset, &pool, server_cfg);
  if (!server.start(error)) {
    std::fprintf(stderr, "bench_svc: %s\n", error.c_str());
    return 1;
  }
  std::thread serve_thread([&] { server.serve(); });
  const std::uint16_t port = server.port();

  // Workload: figure digests dominate so cold latency is analysis-bound;
  // the point queries use the first traced pair.
  std::vector<Request> workload;
  const auto pairs = dataset.trace_pairs();
  if (!pairs.empty()) {
    svc::PairQuery q;
    q.src = pairs.front().src;
    q.dst = pairs.front().dst;
    q.family = pairs.front().family;
    workload.push_back({svc::MsgType::kPairRtt, svc::encode_pair_query(q)});
    workload.push_back(
        {svc::MsgType::kPathPrevalence, svc::encode_pair_query(q)});
    workload.push_back(
        {svc::MsgType::kCongestionVerdict, svc::encode_pair_query(q)});
    workload.push_back({svc::MsgType::kDualStackDelta,
                        svc::encode_dualstack_query({q.src, q.dst})});
  }
  for (const std::uint8_t figure : {1, 2, 5, 10, 2, 5, 10, 2}) {
    svc::FigureQuery q;
    q.figure = figure;
    workload.push_back(
        {svc::MsgType::kFigureDigest, svc::encode_figure_query(q)});
  }

  std::printf("bench_svc: %zu connections, %zu-request workload, port %u\n",
              connections, workload.size(), static_cast<unsigned>(port));

  const PhaseResult cold = run_phase("127.0.0.1", port, workload, connections,
                                     /*rounds=*/1, svc::kFlagNoCache);
  const PhaseResult warm = run_phase("127.0.0.1", port, workload, connections,
                                     warm_rounds, /*flags=*/0);

  const svc::ResultCache::Stats cache = server.cache().stats();
  server.request_drain();
  serve_thread.join();

  obs::json::Writer w;
  w.begin_object();
  w.key("tool").value("bench_svc");
  w.key("connections").value(static_cast<std::uint64_t>(connections));
  w.key("workload_requests").value(
      static_cast<std::uint64_t>(workload.size()));
  w.key("warm_rounds").value(static_cast<std::uint64_t>(warm_rounds));
  phase_json(w, "cold", cold);
  phase_json(w, "warm", warm);
  const double p50_cold = stats::quantile(cold.latencies_us, 0.50);
  const double p50_warm = stats::quantile(warm.latencies_us, 0.50);
  w.key("speedup_p50").value(p50_warm > 0.0 ? p50_cold / p50_warm : 0.0);
  w.key("cache").begin_object();
  w.key("hits").value(cache.hits);
  w.key("misses").value(cache.misses);
  w.key("insertions").value(cache.insertions);
  w.key("evictions").value(cache.evictions);
  w.key("entries").value(cache.entries);
  w.key("bytes").value(cache.bytes);
  w.end_object();
  w.end_object();

  const std::string json = w.str();
  std::printf("%s\n", json.c_str());
  if (want_report && !obs::write_text_file(report_path, json)) {
    return 1;
  }
  if (cold.errors > 0 || warm.errors > 0) {
    std::fprintf(stderr, "bench_svc: %zu cold / %zu warm request errors\n",
                 cold.errors, warm.errors);
    return 1;
  }
  return 0;
}
