// bench_svc — closed-loop load generator for the s2sd query daemon.
//
// Starts an in-process server on an ephemeral port over a generated
// fixture archive, then drives it from N client connections, each
// looping a mixed workload (figure digests dominate, so the cold
// numbers measure real analysis work, not framing overhead):
//
//   cold phase: every request carries kFlagNoCache, so the server
//     executes the analysis each time (results are still inserted);
//   warm phase: the same workload without the flag — all cache hits.
//
// Prints a JSON document with requests/sec and client-observed p50/p99
// latency for both phases plus the cache counters, and writes the same
// document to BENCH_svc.json (override with --report PATH, disable with
// --no-report). The warm/cold p50 ratio is the headline: the acceptance
// bar is warm p50 at least 5x lower than cold p50.
//
// Two degraded-mode sections (DESIGN.md section 12) ride along:
//   "degraded": the warm workload replayed through a seeded in-process
//     chaos proxy injecting latency+jitter — requests/sec and p99 under
//     fault vs clean, with the retrying clients' counters; and
//   "overload": 2x the serving capacity offered as pipelined bursts
//     against a tight admission budget — the shed rate and that every
//     busy response carried a retry-after hint.
//
// With --trace PATH the clients stamp every request with a trace
// context and the chrome://tracing JSON is written on exit; because the
// server runs in-process, one export holds both the client attempt /
// retry / hedge spans and the server's per-request phase spans, stitched
// by shared trace ids (DESIGN.md section 13). --no-report additionally
// disables the metrics registry and trace collector, so the warm-phase
// delta vs a default run is the observability overhead.
//
// A "reactor_scaling" section measures the multi-reactor serving tier:
// the cached point-query workload replayed against fresh servers at
// --reactors 1 and at --scale-reactors N (default 4; 0 disables), with
// enough connections to keep every reactor busy. The reported ratio is
// the CI scaling gate's input (req/s at N reactors vs 1 — meaningful
// only on multi-core runners).
//
//   bench_svc [--fast] [--connections N] [--warm-rounds N] [--threads N]
//             [--reactors N] [--scale-reactors N] [--scale-rounds N]
//             [--timeout-ms N] [--retries N] [--hedge]
//             [--hedge-delay-ms N] [--report PATH] [--no-report]
//             [--trace PATH]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "exec/pool.h"
#include "faultsim/chaos_proxy.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "stats/summary.h"
#include "svc/client.h"
#include "svc/dataset.h"
#include "svc/protocol.h"
#include "svc/retry_client.h"
#include "svc/server.h"

namespace {

using Clock = std::chrono::steady_clock;

struct Request {
  s2s::svc::MsgType type;
  std::string payload;
};

struct PhaseResult {
  std::vector<double> latencies_us;
  double wall_s = 0.0;
  std::size_t errors = 0;
  s2s::svc::RetryStats retry;  ///< summed over the phase's clients

  double requests_per_sec() const {
    return wall_s > 0.0 ? static_cast<double>(latencies_us.size()) / wall_s
                        : 0.0;
  }
};

PhaseResult run_phase(const char* host, std::uint16_t port,
                      const std::vector<Request>& workload,
                      std::size_t connections, std::size_t rounds,
                      std::uint8_t flags, const s2s::svc::RetryPolicy& policy) {
  std::vector<std::vector<double>> lat(connections);
  std::vector<std::size_t> errors(connections, 0);
  std::vector<s2s::svc::RetryStats> retry(connections);
  std::vector<std::thread> threads;
  const auto t0 = Clock::now();
  for (std::size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      s2s::svc::RetryPolicy p = policy;
      p.jitter_seed = policy.jitter_seed + c;  // decorrelate the backoffs
      s2s::svc::RetryingClient client(host, port, p);
      std::string error;
      for (std::size_t r = 0; r < rounds; ++r) {
        for (const Request& req : workload) {
          s2s::svc::MsgType rtype;
          std::string rpayload;
          const auto q0 = Clock::now();
          if (!client.call(req.type, flags, req.payload, &rtype, &rpayload,
                           error) ||
              rtype != s2s::svc::MsgType::kOk) {
            ++errors[c];
            continue;
          }
          lat[c].push_back(
              std::chrono::duration<double, std::micro>(Clock::now() - q0)
                  .count());
        }
      }
      retry[c] = client.stats();
    });
  }
  for (auto& t : threads) t.join();
  PhaseResult out;
  out.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  for (auto& v : lat) {
    out.latencies_us.insert(out.latencies_us.end(), v.begin(), v.end());
  }
  for (const std::size_t e : errors) out.errors += e;
  for (const auto& s : retry) {
    out.retry.attempts += s.attempts;
    out.retry.retries += s.retries;
    out.retry.failed_attempts += s.failed_attempts;
    out.retry.timeouts += s.timeouts;
    out.retry.busy_rescheduled += s.busy_rescheduled;
    out.retry.hedges += s.hedges;
    out.retry.hedge_wins += s.hedge_wins;
  }
  return out;
}

void phase_json(s2s::obs::json::Writer& w, const char* name,
                const PhaseResult& r, bool with_retry = false) {
  w.key(name).begin_object();
  w.key("requests").value(static_cast<std::uint64_t>(r.latencies_us.size()));
  w.key("errors").value(static_cast<std::uint64_t>(r.errors));
  w.key("wall_s").value(r.wall_s);
  w.key("requests_per_sec").value(r.requests_per_sec());
  w.key("p50_us").value(s2s::stats::quantile(r.latencies_us, 0.50));
  w.key("p99_us").value(s2s::stats::quantile(r.latencies_us, 0.99));
  if (with_retry) {
    w.key("retry").begin_object();
    w.key("attempts").value(r.retry.attempts);
    w.key("retries").value(r.retry.retries);
    w.key("failed_attempts").value(r.retry.failed_attempts);
    w.key("timeouts").value(r.retry.timeouts);
    w.key("busy_rescheduled").value(r.retry.busy_rescheduled);
    w.key("hedges").value(r.retry.hedges);
    w.key("hedge_wins").value(r.retry.hedge_wins);
    w.end_object();
  }
  w.end_object();
}

struct OverloadResult {
  std::size_t clients = 0;
  std::uint64_t ok = 0;
  std::uint64_t busy = 0;
  std::uint64_t other = 0;
  std::uint64_t hints_present = 0;
  double wall_s = 0.0;

  double shed_rate() const {
    const double total = static_cast<double>(ok + busy + other);
    return total > 0.0 ? static_cast<double>(busy) / total : 0.0;
  }
};

/// Offers 2x the admission capacity as pipelined ping bursts: `clients`
/// raw connections each fire `rounds` bursts of `burst` frames at a
/// server whose inflight budget admits roughly half of the offered
/// concurrency, and every shed must carry a retry-after hint.
OverloadResult run_overload(const char* host, std::uint16_t port,
                            std::size_t clients, std::size_t rounds,
                            std::size_t burst) {
  std::vector<OverloadResult> per(clients);
  std::vector<std::thread> threads;
  const auto t0 = Clock::now();
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      s2s::svc::Client raw;
      std::string error;
      if (!raw.connect(host, port, error, /*timeout_ms=*/60000)) return;
      std::string batch;
      for (std::size_t i = 0; i < burst; ++i) {
        batch += s2s::svc::encode_frame(s2s::svc::MsgType::kPingEcho, 0, "");
      }
      for (std::size_t r = 0; r < rounds; ++r) {
        if (!raw.send_bytes(batch, error)) return;
        for (std::size_t i = 0; i < burst; ++i) {
          s2s::svc::MsgType rtype;
          std::string rpayload;
          if (!raw.read_frame(&rtype, &rpayload, error)) return;
          if (rtype == s2s::svc::MsgType::kOk) {
            ++per[c].ok;
            continue;
          }
          const auto info = s2s::svc::parse_error_payload(rpayload);
          if (info.code == "busy") {
            ++per[c].busy;
            if (info.retry_after_ms >= 0) ++per[c].hints_present;
          } else {
            ++per[c].other;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  OverloadResult out;
  out.clients = clients;
  out.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  for (const auto& p : per) {
    out.ok += p.ok;
    out.busy += p.busy;
    out.other += p.other;
    out.hints_present += p.hints_present;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace s2s;

  std::size_t connections = 4;
  std::size_t warm_rounds = 4;
  std::size_t reactors = 1;
  std::size_t scale_reactors = 4;
  std::size_t scale_rounds = 8;
  int threads = 0;
  bool fast = false;
  bool want_report = true;
  std::string report_path = "BENCH_svc.json";
  std::string trace_path;
  svc::RetryPolicy policy;
  policy.timeout_ms = 60000;  // closed-loop: cold figures can be slow

  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (!std::strcmp(argv[i], "--connections")) {
      connections = static_cast<std::size_t>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--warm-rounds")) {
      warm_rounds = static_cast<std::size_t>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--threads")) {
      threads = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--reactors")) {
      reactors = static_cast<std::size_t>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--scale-reactors")) {
      scale_reactors = static_cast<std::size_t>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--scale-rounds")) {
      scale_rounds = static_cast<std::size_t>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--fast")) {
      fast = true;
    } else if (!std::strcmp(argv[i], "--timeout-ms")) {
      policy.timeout_ms = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--retries")) {
      policy.max_retries = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--hedge")) {
      policy.hedge = true;
    } else if (!std::strcmp(argv[i], "--hedge-delay-ms")) {
      policy.hedge_delay_ms = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--report")) {
      report_path = next();
    } else if (!std::strcmp(argv[i], "--no-report")) {
      want_report = false;
    } else if (!std::strcmp(argv[i], "--trace")) {
      trace_path = next();
    }
  }
  if (fast) {
    connections = 2;
    warm_rounds = 2;
    scale_rounds = 3;
  }
  if (connections == 0) connections = 1;
  if (reactors == 0) reactors = 1;

  obs::MetricsRegistry::global().reset();
  obs::TraceCollector::global().clear();
  if (!want_report && trace_path.empty()) {
    // The overhead baseline: no registry writes, no span commits — the
    // warm-phase delta vs a default run bounds the cost of observability.
    obs::MetricsRegistry::global().set_enabled(false);
    obs::TraceCollector::global().set_enabled(false);
  }
  if (!trace_path.empty()) policy.trace = true;

  svc::DatasetConfig cfg;
  cfg.archive_path = "bench_svc_fixture.s2sb";
  svc::FixtureParams params;
  if (fast) {
    params.trace_days = 7.0;
    params.ping_days = 3.0;
    params.max_trace_pairs = 6;
    params.max_ping_pairs = 24;
  }
  std::string error;
  std::printf("bench_svc: writing fixture %s\n", cfg.archive_path.c_str());
  if (!svc::write_fixture_archive(cfg.archive_path, cfg, params, error)) {
    std::fprintf(stderr, "bench_svc: fixture write failed: %s\n",
                 error.c_str());
    return 1;
  }

  svc::Dataset dataset(cfg);
  if (!dataset.load(error)) {
    std::fprintf(stderr, "bench_svc: load failed: %s\n", error.c_str());
    return 1;
  }

  exec::ThreadPool pool(threads > 0 ? static_cast<unsigned>(threads) : 0u);
  svc::ServerConfig server_cfg;
  server_cfg.max_inflight = 1024;  // closed-loop clients, no shedding
  server_cfg.reactors = reactors;
  svc::Server server(dataset, &pool, server_cfg);
  if (!server.start(error)) {
    std::fprintf(stderr, "bench_svc: %s\n", error.c_str());
    return 1;
  }
  std::thread serve_thread([&] { server.serve(); });
  const std::uint16_t port = server.port();

  // Workload: figure digests dominate so cold latency is analysis-bound;
  // the point queries use the first traced pair.
  std::vector<Request> workload;
  const auto pairs = dataset.trace_pairs();
  if (!pairs.empty()) {
    svc::PairQuery q;
    q.src = pairs.front().src;
    q.dst = pairs.front().dst;
    q.family = pairs.front().family;
    workload.push_back({svc::MsgType::kPairRtt, svc::encode_pair_query(q)});
    workload.push_back(
        {svc::MsgType::kPathPrevalence, svc::encode_pair_query(q)});
    workload.push_back(
        {svc::MsgType::kCongestionVerdict, svc::encode_pair_query(q)});
    workload.push_back({svc::MsgType::kDualStackDelta,
                        svc::encode_dualstack_query({q.src, q.dst})});
  }
  for (const std::uint8_t figure : {1, 2, 5, 10, 2, 5, 10, 2}) {
    svc::FigureQuery q;
    q.figure = figure;
    workload.push_back(
        {svc::MsgType::kFigureDigest, svc::encode_figure_query(q)});
  }

  std::printf("bench_svc: %zu connections, %zu-request workload, port %u\n",
              connections, workload.size(), static_cast<unsigned>(port));

  const PhaseResult cold = run_phase("127.0.0.1", port, workload, connections,
                                     /*rounds=*/1, svc::kFlagNoCache, policy);
  const PhaseResult warm = run_phase("127.0.0.1", port, workload, connections,
                                     warm_rounds, /*flags=*/0, policy);

  // Degraded mode: the warm workload again, but through a seeded chaos
  // proxy injecting latency+jitter — the delta vs "warm" is what the
  // serving path loses to a degraded network while staying error-free.
  std::printf("bench_svc: degraded phase (chaos latency+jitter)\n");
  faultsim::ChaosConfig chaos_cfg;
  chaos_cfg.seed = 4242;
  chaos_cfg.upstream_port = port;
  chaos_cfg.latency_ms = 2;
  chaos_cfg.jitter_ms = 3;
  faultsim::ChaosProxy proxy(chaos_cfg);
  PhaseResult degraded;
  bool degraded_ran = false;
  if (proxy.start(error)) {
    degraded = run_phase("127.0.0.1", proxy.port(), workload, connections,
                         warm_rounds, /*flags=*/0, policy);
    proxy.stop();
    degraded_ran = true;
  } else {
    std::fprintf(stderr, "bench_svc: chaos proxy failed: %s\n", error.c_str());
  }

  const svc::ResultCache::Stats cache = server.cache_stats();
  server.request_drain();
  serve_thread.join();

  // Overload: a second server over the same dataset with a tight
  // admission budget, offered 2x its inflight capacity as pipelined
  // ping bursts — measures the shed rate and hint coverage.
  std::printf("bench_svc: overload phase (2x admission capacity)\n");
  svc::ServerConfig ov_cfg;
  ov_cfg.max_inflight = 8;
  svc::Server ov_server(dataset, &pool, ov_cfg);
  OverloadResult overload;
  bool overload_ran = false;
  if (ov_server.start(error)) {
    std::thread ov_thread([&] { ov_server.serve(); });
    overload = run_overload("127.0.0.1", ov_server.port(),
                            /*clients=*/2 * connections,
                            /*rounds=*/fast ? 20 : 100,
                            /*burst=*/2 * ov_cfg.max_inflight);
    ov_server.request_drain();
    ov_thread.join();
    overload_ran = true;
  } else {
    std::fprintf(stderr, "bench_svc: overload server failed: %s\n",
                 error.c_str());
  }

  // Reactor scaling: the cached point-query workload (cheap per-request
  // work, so the serving tier — not the analysis — is the bottleneck)
  // against fresh servers at 1 reactor and at scale_reactors, with
  // enough connections to keep every reactor's accept shard busy.
  struct ScalePoint {
    std::size_t reactors = 0;
    bool reuseport = false;
    double rps = 0.0;
    double p99_us = 0.0;
  };
  std::vector<ScalePoint> scaling;
  bool scaling_ran = false;
  if (scale_reactors > 1) {
    std::vector<Request> hot_workload;
    for (const Request& req : workload) {
      if (req.type != svc::MsgType::kFigureDigest) hot_workload.push_back(req);
    }
    hot_workload.push_back({svc::MsgType::kPingEcho, ""});
    const std::size_t hot_conns = std::max(connections, 2 * scale_reactors);
    scaling_ran = true;
    for (const std::size_t n : {std::size_t{1}, scale_reactors}) {
      std::printf("bench_svc: scaling phase (%zu reactor%s)\n", n,
                  n == 1 ? "" : "s");
      svc::ServerConfig sc_cfg;
      sc_cfg.max_inflight = 1024;
      sc_cfg.reactors = n;
      svc::Server sc_server(dataset, &pool, sc_cfg);
      if (!sc_server.start(error)) {
        std::fprintf(stderr, "bench_svc: scaling server failed: %s\n",
                     error.c_str());
        scaling_ran = false;
        break;
      }
      std::thread sc_thread([&] { sc_server.serve(); });
      // Fill pass: every reactor's cache sees the workload once (the
      // per-reactor caches warm independently), then the measured pass.
      run_phase("127.0.0.1", sc_server.port(), hot_workload, hot_conns,
                /*rounds=*/1, /*flags=*/0, policy);
      const PhaseResult r =
          run_phase("127.0.0.1", sc_server.port(), hot_workload, hot_conns,
                    scale_rounds, /*flags=*/0, policy);
      ScalePoint point;
      point.reactors = n;
      point.reuseport = sc_server.reuseport_active();
      point.rps = r.requests_per_sec();
      point.p99_us = stats::quantile(r.latencies_us, 0.99);
      sc_server.request_drain();
      sc_thread.join();
      if (r.errors > 0) {
        std::fprintf(stderr, "bench_svc: %zu scaling request errors\n",
                     r.errors);
        scaling_ran = false;
        break;
      }
      scaling.push_back(point);
    }
  }

  obs::json::Writer w;
  w.begin_object();
  w.key("tool").value("bench_svc");
  w.key("connections").value(static_cast<std::uint64_t>(connections));
  w.key("workload_requests").value(
      static_cast<std::uint64_t>(workload.size()));
  w.key("warm_rounds").value(static_cast<std::uint64_t>(warm_rounds));
  phase_json(w, "cold", cold);
  phase_json(w, "warm", warm);
  if (degraded_ran) {
    phase_json(w, "degraded", degraded, /*with_retry=*/true);
    const double p99_warm = stats::quantile(warm.latencies_us, 0.99);
    const double p99_deg = stats::quantile(degraded.latencies_us, 0.99);
    w.key("degraded_p99_ratio")
        .value(p99_warm > 0.0 ? p99_deg / p99_warm : 0.0);
  }
  if (overload_ran) {
    w.key("overload").begin_object();
    w.key("clients").value(static_cast<std::uint64_t>(overload.clients));
    w.key("ok").value(overload.ok);
    w.key("busy").value(overload.busy);
    w.key("other").value(overload.other);
    w.key("hints_present").value(overload.hints_present);
    w.key("shed_rate").value(overload.shed_rate());
    w.key("wall_s").value(overload.wall_s);
    w.end_object();
  }
  if (scaling_ran && scaling.size() == 2) {
    w.key("reactor_scaling").begin_object();
    w.key("reactors").value(static_cast<std::uint64_t>(scaling[1].reactors));
    w.key("reuseport").value(scaling[1].reuseport);
    w.key("rps_1").value(scaling[0].rps);
    w.key("p99_us_1").value(scaling[0].p99_us);
    w.key("rps_n").value(scaling[1].rps);
    w.key("p99_us_n").value(scaling[1].p99_us);
    w.key("ratio").value(scaling[0].rps > 0.0 ? scaling[1].rps / scaling[0].rps
                                              : 0.0);
    w.end_object();
  }
  const double p50_cold = stats::quantile(cold.latencies_us, 0.50);
  const double p50_warm = stats::quantile(warm.latencies_us, 0.50);
  w.key("speedup_p50").value(p50_warm > 0.0 ? p50_cold / p50_warm : 0.0);
  w.key("cache").begin_object();
  w.key("hits").value(cache.hits);
  w.key("misses").value(cache.misses);
  w.key("insertions").value(cache.insertions);
  w.key("evictions").value(cache.evictions);
  w.key("entries").value(cache.entries);
  w.key("bytes").value(cache.bytes);
  w.end_object();
  w.end_object();

  const std::string json = w.str();
  std::printf("%s\n", json.c_str());
  if (want_report && !obs::write_text_file(report_path, json)) {
    return 1;
  }
  if (!trace_path.empty()) {
    const auto& collector = obs::TraceCollector::global();
    if (!obs::write_text_file(trace_path, collector.to_chrome_json())) {
      return 1;
    }
    std::printf("bench_svc: chrome trace (%zu spans, %zu dropped): %s\n",
                collector.events().size(), collector.dropped(),
                trace_path.c_str());
  }
  if (cold.errors > 0 || warm.errors > 0 || degraded.errors > 0) {
    std::fprintf(stderr,
                 "bench_svc: %zu cold / %zu warm / %zu degraded request "
                 "errors\n",
                 cold.errors, warm.errors, degraded.errors);
    return 1;
  }
  if (!degraded_ran || !overload_ran) return 1;
  return 0;
}
