// Shared Section 5 pipeline: ping survey -> follow-up traceroutes ->
// segment localization -> ownership inference -> link classification.
// Used by bench_sec51, bench_sec53 and bench_fig9.
#pragma once

#include "bench/common.h"
#include "core/congestion_detect.h"
#include "core/congestion_study.h"
#include "core/localize.h"
#include "core/ownership.h"
#include "core/segment_series.h"

namespace s2s::bench {

struct CongestionPipeline {
  core::CongestionSurvey survey;
  core::LocalizeResult localization;
  core::OwnershipInference::Stats ownership_stats;
  core::CongestionStudy study;
  std::size_t followup_pairs = 0;
};

/// Runs the paper's Section 5 measurement chain end to end.
inline CongestionPipeline run_congestion_pipeline(
    Deployment& d, const Options& opt,
    const core::CongestionDetectConfig& detect_cfg = {},
    exec::ThreadPool* pool = nullptr) {
  CongestionPipeline out;

  // --- 5.1: one-week 15-minute ping campaign --------------------------
  probe::PingCampaignConfig ping_cfg;
  ping_cfg.start_day = 417.0;
  ping_cfg.days = opt.fast ? 7.0 : 7.0;
  ping_cfg.seed = opt.seed + 31;
  probe::PingCampaign pings(*d.net, ping_cfg, d.pairs);
  core::PingSeriesStore ping_store(ping_cfg.start_day, net::kFifteenMinutes,
                                   pings.epochs());
  obs::logf(obs::LogLevel::kInfo, "ping campaign: %zu pairs, %zu epochs",
            d.pairs.size() * 2, pings.epochs());
  pings.run([&](const probe::PingRecord& r) { ping_store.add(r); });
  if (ObsSession* session = ObsSession::active()) {
    session->note_quality(ping_store.quality());
  }
  auto cfg = detect_cfg;
  cfg.min_samples = static_cast<std::size_t>(0.88 * pings.epochs());
  out.survey = core::survey_congestion(ping_store, cfg, pool);

  // --- 5.2: three-week 30-minute traceroute follow-up ------------------
  std::vector<std::pair<topology::ServerId, topology::ServerId>> flagged;
  for (const auto& f : out.survey.flagged) flagged.emplace_back(f.src, f.dst);
  std::sort(flagged.begin(), flagged.end());
  flagged.erase(std::unique(flagged.begin(), flagged.end()), flagged.end());
  out.followup_pairs = flagged.size();
  if (flagged.empty()) return out;

  probe::TracerouteCampaignConfig follow_cfg;
  follow_cfg.start_day = 424.0;
  follow_cfg.days = opt.fast ? 7.0 : 21.0;
  follow_cfg.interval_s = net::kThirtyMinutes;
  follow_cfg.paris_switch_day = 0.0;
  follow_cfg.seed = opt.seed + 37;
  // The follow-up probes must see the same diurnal links, so keep
  // stop-early low for denser series.
  follow_cfg.traceroute.stop_early_prob = 0.1;
  probe::TracerouteCampaign followup(*d.net, follow_cfg, flagged);

  core::SegmentSeriesStore segments(follow_cfg.start_day,
                                    net::kThirtyMinutes, followup.epochs());
  const auto rels = bgp::RelationshipTable::from_topology(d.topo());
  core::OwnershipInference ownership(d.net->rib(), rels);
  std::vector<net::IPAddr> run;
  obs::logf(obs::LogLevel::kInfo, "follow-up campaign: %zu flagged pairs",
            flagged.size());
  auto feed_ownership = [&](const probe::TracerouteRecord& r) {
    if (!r.complete) return;
    // Feed maximal responsive runs to the ownership heuristics.
    run.clear();
    for (const auto& hop : r.hops) {
      if (hop.addr) {
        run.push_back(*hop.addr);
        continue;
      }
      if (run.size() >= 2) ownership.observe_path(run);
      run.clear();
    }
    if (run.size() >= 2) ownership.observe_path(run);
  };
  followup.run([&](const probe::TracerouteRecord& r) {
    segments.add(r);
    feed_ownership(r);
  });
  if (ObsSession* session = ObsSession::active()) {
    session->note_quality(segments.quality());
  }
  // The paper labels interfaces from *all* traceroute paths, not only the
  // flagged pairs: add one day of the routine full-mesh sweep so the
  // election has the surrounding-path constraints it needs.
  {
    probe::TracerouteCampaignConfig sweep_cfg;
    sweep_cfg.start_day = 424.0;
    sweep_cfg.days = 1.0;
    sweep_cfg.paris_switch_day = 0.0;
    sweep_cfg.seed = opt.seed + 41;
    probe::TracerouteCampaign sweep(*d.net, sweep_cfg, d.pairs);
    sweep.run(feed_ownership);
  }
  ownership.finalize();
  out.ownership_stats = ownership.stats();

  core::LocalizeConfig loc_cfg;
  loc_cfg.min_traces = static_cast<std::size_t>(0.3 * followup.epochs());
  out.localization =
      core::localize_congestion(segments, d.net->rib(), loc_cfg, pool);

  const auto ixps = core::IxpDirectory::from_topology(d.topo());
  const core::LinkClassifier classifier(ownership, rels, ixps);
  out.study = core::build_congestion_study(out.localization.segments,
                                           classifier, d.topo());
  return out;
}

}  // namespace s2s::bench
