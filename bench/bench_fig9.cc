// Reproduces Figure 9: density of the congestion overhead (ms added at
// the busy hour) over the congested links, split internal vs
// interconnection, with the US-US subsets.
#include "bench/common.h"
#include "bench/congestion_pipeline.h"

#include "stats/density.h"
#include "stats/summary.h"

using namespace s2s;

namespace {

void print_density(const char* name, const std::vector<double>& samples) {
  if (samples.size() < 3) {
    std::printf("%s: only %zu links at this scale (increase --pairs)\n",
                name, samples.size());
    return;
  }
  std::printf("%s (n=%zu, median %.1f ms):\n", name, samples.size(),
              stats::median(samples));
  for (const auto& point : stats::kde(samples, 0.0, 120.0, 25)) {
    std::printf("  %6.1f ms  %.4f  %s\n", point.x, point.density,
                std::string(static_cast<std::size_t>(point.density * 300),
                            '#')
                    .c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  auto opt = bench::Options::parse(argc, argv);
  const bench::ObsSession obs_session("bench_fig9", opt);
  // Congestion is a tail phenomenon: this bench needs a wide pair sample.
  if (!opt.fast && opt.pairs < 2500) opt.pairs = 2500;
  bench::print_header("Figure 9: density of congestion overhead", opt);

  auto deployment = bench::make_deployment(opt);
  auto pool = bench::make_pool(opt);
  const auto pipeline =
      bench::run_congestion_pipeline(deployment, opt, {}, &pool);

  std::printf("--- measured (localized congested links) ---\n");
  print_density("All interconnection", pipeline.study.overhead_interconnection);
  print_density("All internal", pipeline.study.overhead_internal);
  print_density("US-US interconnection",
                pipeline.study.overhead_us_interconnection);
  print_density("US-US internal", pipeline.study.overhead_us_internal);

  // Ground truth the estimator is chasing: the amplitude distribution of
  // the diurnally congested links in the model, by link class. At paper
  // scale (50K pairs) the measured densities converge to these.
  std::printf("\n--- link-model ground truth (diurnal amplitudes) ---\n");
  const auto& topo = deployment.topo();
  std::vector<double> gt_internal, gt_interconn, gt_us_internal;
  for (const auto& profile : deployment.net->congestion().profiles()) {
    if (profile.kind != simnet::CongestionKind::kDiurnal) continue;
    const auto& link = topo.links[profile.link];
    const auto& ca = topo.cities[topo.routers[link.end_a.router].city];
    const auto& cb = topo.cities[topo.routers[link.end_b.router].city];
    const bool us = ca.country == "US" && cb.country == "US";
    if (link.scope == topology::LinkScope::kInternal) {
      gt_internal.push_back(profile.amplitude_ms);
      if (us) gt_us_internal.push_back(profile.amplitude_ms);
    } else {
      gt_interconn.push_back(profile.amplitude_ms);
    }
  }
  print_density("All interconnection (model)", gt_interconn);
  print_density("All internal (model)", gt_internal);
  print_density("US-US internal (model)", gt_us_internal);

  std::printf(
      "\npaper shape: both curves peak at 20-30 ms (>60%% of density; ~90%%\n"
      "  for US-US pairs, a consequence of uniform 100 ms-RTT buffer\n"
      "  sizing); transcontinental links shift toward ~60 ms with Asia-\n"
      "  Europe extremes near 90 ms.\n");
  return 0;
}
