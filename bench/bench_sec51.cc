// Reproduces Section 5.1: how common is consistent congestion in the
// core? Prints the fraction of server pairs with >10 ms RTT variation and
// the fraction with a strong diurnal pattern, per protocol, plus the
// PSD-threshold ablation (the paper's footnote 2 picked 0.3 empirically).
#include "bench/common.h"
#include "bench/congestion_pipeline.h"

using namespace s2s;

int main(int argc, char** argv) {
  auto opt = bench::Options::parse(argc, argv);
  const bench::ObsSession obs_session("bench_sec51", opt);
  // Congestion is a tail phenomenon: this bench needs a wide pair sample.
  if (!opt.fast && opt.pairs < 1500) opt.pairs = 1500;
  bench::print_header("Section 5.1: is congestion the norm in the core?",
                      opt);

  auto deployment = bench::make_deployment(opt);
  auto pool = bench::make_pool(opt);
  // Re-use the Section 5 ping survey at several diurnal thresholds.
  for (const double threshold : {0.2, 0.3, 0.4}) {
    core::CongestionDetectConfig cfg;
    cfg.diurnal_ratio_threshold = threshold;
    // Only the survey stage is needed; skip the follow-up by querying the
    // pipeline and ignoring the rest (cheap relative to the pings).
    probe::PingCampaignConfig ping_cfg;
    ping_cfg.start_day = 417.0;
    ping_cfg.seed = opt.seed + 31;
    probe::PingCampaign pings(*deployment.net, ping_cfg, deployment.pairs);
    core::PingSeriesStore store(ping_cfg.start_day, net::kFifteenMinutes,
                                pings.epochs());
    pings.run([&](const probe::PingRecord& r) { store.add(r); });
    cfg.min_samples = static_cast<std::size_t>(0.88 * pings.epochs());
    const auto survey = core::survey_congestion(store, cfg, &pool);

    auto show = [&](const char* name,
                    const core::CongestionSurvey::PerFamily& f) {
      if (f.pairs_assessed == 0) return;
      std::printf("  %s: assessed=%zu  >10ms variation=%.2f%%  "
                  "consistent congestion=%.2f%%\n",
                  name, f.pairs_assessed,
                  100.0 * f.high_variation / f.pairs_assessed,
                  100.0 * f.consistent / f.pairs_assessed);
    };
    std::printf("diurnal PSD threshold %.1f:\n", threshold);
    show("IPv4", survey.v4);
    show("IPv6", survey.v6);
  }

  std::printf(
      "\npaper (threshold 0.3): <9.5%% of IPv4 and <4%% of IPv6 pairs vary\n"
      "  by >10 ms; the strong-diurnal subset drops to 2%% (IPv4) and 0.6%%\n"
      "  (IPv6) — consistent congestion is not the norm in the core.\n");
  return 0;
}
