// Reproduces Figure 2: (a) ECDF of unique AS paths per trace timeline and
// (b) ECDF of forward/reverse AS-path pairs per server pair, over the
// long-term campaign.
#include "bench/common.h"

#include "core/routing_study.h"

using namespace s2s;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  const bench::ObsSession obs_session("bench_fig2", opt);
  bench::print_header("Figure 2: unique AS paths and AS-path pairs", opt);

  auto deployment = bench::make_deployment(opt);
  const auto store = bench::run_long_term(deployment, opt);
  auto pool = bench::make_pool(opt);
  core::RoutingStudyConfig cfg;
  cfg.min_observations = bench::qualifying_observations(opt);
  const auto study = core::run_routing_study(store, cfg, &pool);

  bench::print_ecdf("Fig 2a IPv4: unique AS paths per timeline",
                    stats::Ecdf(study.v4.unique_paths));
  bench::print_ecdf("Fig 2a IPv6: unique AS paths per timeline",
                    stats::Ecdf(study.v6.unique_paths));
  bench::print_ecdf("Fig 2b IPv4: AS-path pairs per server pair",
                    stats::Ecdf(study.path_pairs_v4));
  bench::print_ecdf("Fig 2b IPv6: AS-path pairs per server pair",
                    stats::Ecdf(study.path_pairs_v6));

  const stats::Ecdf u4(study.v4.unique_paths), u6(study.v6.unique_paths);
  const stats::Ecdf p4(study.path_pairs_v4), p6(study.path_pairs_v6);
  std::printf("\npaper vs measured:\n");
  std::printf("  timelines with exactly 1 AS path: paper 18%% (v4) / 16%% (v6);"
              " measured %.0f%% / %.0f%%\n",
              100.0 * u4.at(1.0), 100.0 * u6.at(1.0));
  std::printf("  80%% of timelines have <=5 (v4) / <=6 (v6) paths;"
              " measured p80 = %.0f / %.0f\n",
              u4.quantile(0.8), u6.quantile(0.8));
  std::printf("  80%% of pairs have <=8 (v4) / <=9 (v6) path pairs;"
              " measured p80 = %.0f / %.0f\n",
              p4.quantile(0.8), p6.quantile(0.8));
  std::printf("  timelines with >=10 paths: paper 2%% (v4) / 3%% (v6);"
              " measured %.1f%% / %.1f%%\n",
              100.0 * (1.0 - u4.at(9.0)), 100.0 * (1.0 - u6.at(9.0)));
  return 0;
}
