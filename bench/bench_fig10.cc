// Reproduces Figure 10: (a) ECDF of RTTv4 - RTTv6 over simultaneously
// measured pairs, all vs same-AS-path; (b) RTT inflation over the
// speed-of-light bound (cRTT), all / US-US / transcontinental.
#include "bench/common.h"

#include "core/dualstack.h"
#include "core/inflation.h"
#include "stats/summary.h"

using namespace s2s;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  const bench::ObsSession obs_session("bench_fig10", opt);
  bench::print_header("Figure 10: IPv4 vs IPv6", opt);

  auto deployment = bench::make_deployment(opt);
  const auto store = bench::run_long_term(deployment, opt);
  auto pool = bench::make_pool(opt);

  // --- Figure 10a --------------------------------------------------------
  const auto dual = core::run_dualstack_study(store, &pool);
  std::printf("Fig 10a: RTTv4 - RTTv6 over %llu matched samples"
              " (%zu pairs)\n",
              static_cast<unsigned long long>(dual.samples_matched),
              dual.pairs_matched);
  std::printf("  ECDF (All):\n%s", dual.diff_all.to_tsv(24).c_str());
  std::printf("  ECDF (Same AS-paths, %llu samples):\n%s",
              static_cast<unsigned long long>(dual.samples_same_path),
              dual.diff_same_path.to_tsv(24).c_str());

  const double similar =
      dual.diff_all.at(10.0) - dual.diff_all.at(-10.0);
  std::printf("paper vs measured:\n");
  std::printf("  |diff| < 10 ms: paper ~50%%; measured %.0f%%\n",
              100.0 * similar);
  std::printf("  IPv6 saves >=50 ms: paper 3.7%% of pairs; measured %.1f%%"
              " of samples\n", 100.0 * dual.diff_all.tail_at_least(50.0));
  std::printf("  IPv4 saves >=50 ms: paper 8.5%%; measured %.1f%%\n",
              100.0 * dual.diff_all.at(-50.0));
  std::printf("  same-AS-path samples: paper 170M/826M = 21%%; measured"
              " %.0f%%\n",
              100.0 * static_cast<double>(dual.samples_same_path) /
                  static_cast<double>(dual.samples_matched));

  // --- Figure 10b --------------------------------------------------------
  const auto inflation = core::run_inflation_study(store, deployment.topo());
  auto show = [](const char* name, const std::vector<double>& v,
                 double paper_median) {
    if (v.empty()) {
      std::printf("  %-24s (no qualifying pairs at this scale)\n", name);
      return;
    }
    const auto sorted = stats::sorted(v);
    std::printf("  %-24s median %.2f (paper %.2f)   p90 %.2f\n", name,
                stats::quantile_sorted(sorted, 0.5), paper_median,
                stats::quantile_sorted(sorted, 0.9));
  };
  std::printf("\nFig 10b: RTT inflation over cRTT\n");
  show("IPv4 all", inflation.all.v4, 3.01);
  show("IPv6 all", inflation.all.v6, 3.10);
  show("IPv4 US<->US", inflation.us_us.v4, 0.0);
  show("IPv6 US<->US", inflation.us_us.v6, 0.0);
  show("IPv4 transcontinental", inflation.transcontinental.v4, 0.0);
  show("IPv6 transcontinental", inflation.transcontinental.v6, 0.0);
  std::printf("  paper: transcontinental inflation is significantly lower\n"
              "  than US-US inflation (long geodesic legs amortize detours).\n");
  return 0;
}
