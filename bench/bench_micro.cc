// Micro-benchmarks (google-benchmark) for the core primitives: topology
// generation, valley-free route computation, longest-prefix match, AS-path
// edit distance, the diurnal FFT detector, traceroute simulation, and the
// record-ingest hot path with observability on vs off — plus the
// edit-distance vs exact-equality change-detection ablation.
//
// After the benchmark table, main() prints a one-line JSON summary with
// ingest throughput, the obs overhead percentage, p50/p99 of the
// ingested RTTs taken from the s2s.timeline.rtt_ms histogram, and the
// parallel congestion-survey speedup vs 1 thread (with an
// identical-output cross-check of the serial and 8-thread results).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "bgp/rib.h"
#include "io/binrec.h"
#include "io/records_io.h"
#include "core/change_detect.h"
#include "core/congestion_detect.h"
#include "core/ping_series.h"
#include "core/timeline.h"
#include "exec/pool.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "probe/campaign.h"
#include "probe/traceroute.h"
#include "routing/valley_free.h"
#include "simnet/network.h"
#include "stats/fft.h"
#include "topology/generator.h"

namespace {

using namespace s2s;

const topology::Topology& shared_topology() {
  static const topology::Topology topo = [] {
    topology::GeneratorConfig cfg;
    cfg.seed = 42;
    return topology::generate(cfg);
  }();
  return topo;
}

void BM_GenerateTopology(benchmark::State& state) {
  topology::GeneratorConfig cfg;
  cfg.stub_count = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto topo = topology::generate(cfg);
    benchmark::DoNotOptimize(topo.links.size());
    cfg.seed++;
  }
}
BENCHMARK(BM_GenerateTopology)->Arg(100)->Arg(400);

void BM_ValleyFreeCompute(benchmark::State& state) {
  const auto& topo = shared_topology();
  const routing::ValleyFreeRouter router(topo);
  topology::AsId dest = 0;
  for (auto _ : state) {
    const auto table = router.compute(dest, net::Family::kIPv4);
    benchmark::DoNotOptimize(table.length[dest]);
    dest = (dest + 1) % static_cast<topology::AsId>(topo.ases.size());
  }
}
BENCHMARK(BM_ValleyFreeCompute);

void BM_RibLongestPrefixMatch(benchmark::State& state) {
  const auto rib = bgp::Rib::from_topology(shared_topology());
  std::uint32_t addr = 0x01010001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rib.origin(net::IPv4Addr(addr)));
    addr += 0x00010007;  // walk across prefixes
    if (addr > 0x20000000) addr = 0x01010001;
  }
}
BENCHMARK(BM_RibLongestPrefixMatch);

void BM_EditDistance(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  net::AsPath a, b;
  for (std::size_t i = 0; i < len; ++i) {
    a.emplace_back(static_cast<std::uint32_t>(i + 1));
    b.emplace_back(static_cast<std::uint32_t>(i % 2 == 0 ? i + 1 : i + 100));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::edit_distance(a, b));
  }
}
BENCHMARK(BM_EditDistance)->Arg(4)->Arg(8)->Arg(16);

// Ablation: exact string inequality is ~10x cheaper than edit distance and
// detects the same change *events*; edit distance additionally grades their
// magnitude (the paper uses the distance only as a nonzero indicator).
void BM_ChangeDetect_ExactEquality(benchmark::State& state) {
  net::AsPath a{net::Asn(1), net::Asn(2), net::Asn(3), net::Asn(4)};
  net::AsPath b{net::Asn(1), net::Asn(2), net::Asn(4)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(a == b);
  }
}
BENCHMARK(BM_ChangeDetect_ExactEquality);

void BM_ChangeDetect_EditDistance(benchmark::State& state) {
  net::AsPath a{net::Asn(1), net::Asn(2), net::Asn(3), net::Asn(4)};
  net::AsPath b{net::Asn(1), net::Asn(2), net::Asn(4)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::edit_distance(a, b) != 0);
  }
}
BENCHMARK(BM_ChangeDetect_EditDistance);

void BM_DiurnalRatio(benchmark::State& state) {
  std::vector<double> series;
  for (int i = 0; i < 7 * 96; ++i) {
    const double hour = (i % 96) / 4.0;
    series.push_back(80.0 + 20.0 * std::exp(-(hour - 20) * (hour - 20) / 8));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::diurnal_power_ratio(series, 96.0).ratio);
  }
}
BENCHMARK(BM_DiurnalRatio);

simnet::Network& shared_network() {
  static simnet::Network* net = [] {
    simnet::NetworkConfig cfg;
    cfg.topology.server_count = 40;
    auto* n = new simnet::Network(cfg);
    std::vector<topology::ServerId> servers;
    for (topology::ServerId s = 0; s < n->topo().servers.size(); ++s) {
      servers.push_back(s);
    }
    n->prepare_full_mesh(servers);
    return n;
  }();
  return *net;
}

void BM_Traceroute(benchmark::State& state) {
  simnet::Network* net = &shared_network();
  probe::TracerouteEngine engine(*net, {}, stats::Rng(1));
  topology::ServerId dst = 1;
  std::int64_t t = 0;
  for (auto _ : state) {
    auto rec = engine.run(0, dst, net::Family::kIPv4, net::SimTime(t),
                          probe::TracerouteMethod::kParis);
    benchmark::DoNotOptimize(rec.has_value());
    dst = 1 + (dst % 39);
    t += net::kThreeHours;
  }
}
BENCHMARK(BM_Traceroute);

/// Distinct pre-generated records so the ingest loop never trips the
/// dedup window (capacity 4096) or re-parses: the benchmark measures
/// TimelineStore::add alone.
const std::vector<probe::TracerouteRecord>& ingest_records() {
  static const std::vector<probe::TracerouteRecord> records = [] {
    std::vector<probe::TracerouteRecord> out;
    probe::TracerouteEngine engine(shared_network(), {}, stats::Rng(7));
    std::int64_t t = 0;
    topology::ServerId dst = 1;
    while (out.size() < 8192) {
      if (auto rec = engine.run(0, dst, net::Family::kIPv4, net::SimTime(t),
                                probe::TracerouteMethod::kParis)) {
        out.push_back(std::move(*rec));
      }
      dst = 1 + (dst % 39);
      t += net::kThreeHours;
    }
    return out;
  }();
  return records;
}

// Record-ingest hot path: Arg(1) = obs enabled (instrumented production
// configuration), Arg(0) = disabled global registry (the no-op arm). The
// acceptance bar for leaving instrumentation on is <5% throughput delta.
void BM_TimelineIngest(benchmark::State& state) {
  simnet::Network& net = shared_network();
  const auto& records = ingest_records();
  auto& reg = obs::MetricsRegistry::global();
  reg.set_enabled(state.range(0) != 0);
  core::TimelineStore store(net.topo(), net.rib(), {0.0, net::kThreeHours});
  std::size_t i = 0;
  for (auto _ : state) {
    store.add(records[i]);
    if (++i == records.size()) i = 0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  reg.set_enabled(true);
}
BENCHMARK(BM_TimelineIngest)->Arg(0)->Arg(1);

/// The same record set serialized once into each archive format, plus an
/// on-disk copy of the binary image for the mmap arm.
struct IngestImages {
  std::string text;
  std::string binary;
  std::string binary_path;
};

const IngestImages& ingest_images() {
  static const IngestImages images = [] {
    IngestImages out;
    std::ostringstream text_out;
    std::ostringstream bin_out(std::ios::binary);
    io::RecordWriter text_writer(text_out);
    io::BinRecordWriter bin_writer(bin_out);
    for (const auto& r : ingest_records()) {
      text_writer.write(r);
      bin_writer.write(r);
    }
    bin_writer.finish();
    out.text = text_out.str();
    out.binary = bin_out.str();
    out.binary_path =
        std::filesystem::temp_directory_path() / "s2s_bench_micro.s2sb";
    std::ofstream file(out.binary_path, std::ios::binary | std::ios::trunc);
    file << out.binary;
    return out;
  }();
  return images;
}

// Archive-ingest formats, full decode of the same 8192 traceroutes per
// iteration: text parsing vs the binary columnar block format, streamed
// and memory-mapped. main() reports the binary arms' speedup over text —
// the `.s2sb` acceptance bar is >= 5x for the mmap arm.
void BM_ArchiveIngest_Text(benchmark::State& state) {
  const auto& images = ingest_images();
  std::size_t n = 0;
  for (auto _ : state) {
    std::istringstream in(images.text);
    io::RecordReader reader(in);
    reader.read_all([&](const probe::TracerouteRecord& r) {
                      benchmark::DoNotOptimize(r.time);
                      ++n;
                    },
                    [](const probe::PingRecord&) {});
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ArchiveIngest_Text)->Unit(benchmark::kMillisecond);

void BM_ArchiveIngest_BinStream(benchmark::State& state) {
  const auto& images = ingest_images();
  std::size_t n = 0;
  for (auto _ : state) {
    std::istringstream in(images.binary, std::ios::binary);
    io::BinRecordReader reader(in);
    reader.read_all([&](const probe::TracerouteRecord& r) {
                      benchmark::DoNotOptimize(r.time);
                      ++n;
                    },
                    [](const probe::PingRecord&) {});
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ArchiveIngest_BinStream)->Unit(benchmark::kMillisecond);

void BM_ArchiveIngest_BinMmap(benchmark::State& state) {
  const auto& images = ingest_images();
  std::size_t n = 0;
  for (auto _ : state) {
    io::BinRecordMmapReader reader(images.binary_path);
    reader.read_all([&](const probe::TracerouteRecord& r) {
                      benchmark::DoNotOptimize(r.time);
                      ++n;
                    },
                    [](const probe::PingRecord&) {});
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ArchiveIngest_BinMmap)->Unit(benchmark::kMillisecond);

/// One week of 15-minute pings over the shared 40-server mesh: the
/// pair-level workload for the parallel congestion-survey benchmark.
const core::PingSeriesStore& survey_store() {
  static const core::PingSeriesStore* store = [] {
    simnet::Network& net = shared_network();
    std::vector<std::pair<topology::ServerId, topology::ServerId>> pairs;
    const auto n = net.topo().servers.size();
    for (topology::ServerId a = 0; a < n; ++a) {
      for (topology::ServerId b = a + 1; b < n; ++b) pairs.emplace_back(a, b);
    }
    probe::PingCampaignConfig cfg;
    cfg.days = 7.0;
    probe::PingCampaign pings(net, cfg, pairs);
    auto* s = new core::PingSeriesStore(cfg.start_day, net::kFifteenMinutes,
                                        pings.epochs());
    pings.run([&](const probe::PingRecord& r) { s->add(r); });
    return s;
  }();
  return *store;
}

// The tentpole workload: survey_congestion sharded over Arg(0) worker
// threads. Results are byte-identical at any thread count (DESIGN.md
// section 9); main() cross-checks that and reports speedup vs Arg(1).
void BM_SurveyCongestion(benchmark::State& state) {
  const auto& store = survey_store();
  exec::ThreadPool pool(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    const auto survey = core::survey_congestion(store, {}, &pool);
    benchmark::DoNotOptimize(survey.v4.pairs_assessed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SurveyCongestion)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// Key fields of two surveys compared for the identical-output check.
bool surveys_identical(const core::CongestionSurvey& a,
                       const core::CongestionSurvey& b) {
  if (a.quality.as_map() != b.quality.as_map()) return false;
  if (a.flagged.size() != b.flagged.size()) return false;
  for (std::size_t i = 0; i < a.flagged.size(); ++i) {
    const auto& fa = a.flagged[i];
    const auto& fb = b.flagged[i];
    if (fa.src != fb.src || fa.dst != fb.dst || fa.family != fb.family ||
        fa.verdict.diurnal_ratio != fb.verdict.diurnal_ratio) {
      return false;
    }
  }
  const auto family_equal = [](const core::CongestionSurvey::PerFamily& x,
                               const core::CongestionSurvey::PerFamily& y) {
    return x.pairs_assessed == y.pairs_assessed &&
           x.consistent == y.consistent;
  };
  return family_equal(a.v4, b.v4) && family_equal(a.v6, b.v6);
}

/// ConsoleReporter that also captures per-iteration wall time, keyed by
/// benchmark name, for the JSON summary line.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.iterations > 0) {
        seconds_per_iter_[run.benchmark_name()] =
            run.real_accumulated_time / static_cast<double>(run.iterations);
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

  double seconds_per_iter(const std::string& name) const {
    const auto it = seconds_per_iter_.find(name);
    return it == seconds_per_iter_.end() ? 0.0 : it->second;
  }

 private:
  std::map<std::string, double> seconds_per_iter_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  const double off_s = reporter.seconds_per_iter("BM_TimelineIngest/0");
  const double on_s = reporter.seconds_per_iter("BM_TimelineIngest/1");
  const double text_s = reporter.seconds_per_iter("BM_ArchiveIngest_Text");
  const double bstream_s =
      reporter.seconds_per_iter("BM_ArchiveIngest_BinStream");
  const double bmmap_s = reporter.seconds_per_iter("BM_ArchiveIngest_BinMmap");
  const double survey_1t = reporter.seconds_per_iter("BM_SurveyCongestion/1");
  const double survey_2t = reporter.seconds_per_iter("BM_SurveyCongestion/2");
  const double survey_8t = reporter.seconds_per_iter("BM_SurveyCongestion/8");
  if (off_s <= 0.0 && survey_1t <= 0.0) return 0;  // all filtered out

  const auto snapshot = obs::MetricsRegistry::global().snapshot();
  obs::json::Writer w;
  w.begin_object();
  w.key("bench");
  w.value("bench_micro");
  if (off_s > 0.0 && on_s > 0.0) {
    w.key("ingest_ops_per_sec");
    w.value(1.0 / on_s);
    w.key("ingest_ops_per_sec_noobs");
    w.value(1.0 / off_s);
    w.key("obs_overhead_pct");
    w.value((on_s - off_s) / off_s * 100.0);
    const auto hist = snapshot.histograms.find("s2s.timeline.rtt_ms");
    if (hist != snapshot.histograms.end()) {
      w.key("rtt_ms_p50");
      w.value(hist->second.quantile(0.50));
      w.key("rtt_ms_p99");
      w.value(hist->second.quantile(0.99));
    }
  }
  if (text_s > 0.0) {
    // Archive-format speedups: whole-archive decode time relative to the
    // text parser over the identical record set (>= 5x is the `.s2sb`
    // acceptance bar for the mmap arm).
    w.key("archive_ingest_records_per_sec_text");
    w.value(8192.0 / text_s);
    if (bstream_s > 0.0) {
      w.key("binrec_stream_speedup_vs_text");
      w.value(text_s / bstream_s);
    }
    if (bmmap_s > 0.0) {
      w.key("binrec_mmap_speedup_vs_text");
      w.value(text_s / bmmap_s);
    }
  }
  if (survey_1t > 0.0) {
    // Parallel congestion survey: wall time per pass and speedup vs the
    // exact serial path. Speedup tracks physical cores — on a 1-core
    // host every arm reports ~1.0x.
    w.key("survey_ms_1t");
    w.value(survey_1t * 1e3);
    if (survey_2t > 0.0) {
      w.key("survey_speedup_2t");
      w.value(survey_1t / survey_2t);
    }
    if (survey_8t > 0.0) {
      w.key("survey_speedup_8t");
      w.value(survey_1t / survey_8t);
    }
    w.key("survey_hw_threads");
    w.value(static_cast<std::uint64_t>(s2s::exec::resolve_thread_count(0)));
    // Determinism cross-check: the serial result and an 8-thread run
    // must agree on every flagged pair and quality counter.
    s2s::exec::ThreadPool pool(8);
    const auto serial = s2s::core::survey_congestion(survey_store());
    const auto parallel = s2s::core::survey_congestion(survey_store(), {}, &pool);
    w.key("survey_parallel_output_identical");
    w.value(surveys_identical(serial, parallel));
  }
  w.end_object();
  std::printf("%s\n", w.str().c_str());
  return 0;
}
