// Micro-benchmarks (google-benchmark) for the core primitives: topology
// generation, valley-free route computation, longest-prefix match, AS-path
// edit distance, the diurnal FFT detector, and traceroute simulation —
// plus the edit-distance vs exact-equality change-detection ablation.
#include <benchmark/benchmark.h>

#include "bgp/rib.h"
#include "core/change_detect.h"
#include "probe/traceroute.h"
#include "routing/valley_free.h"
#include "simnet/network.h"
#include "stats/fft.h"
#include "topology/generator.h"

namespace {

using namespace s2s;

const topology::Topology& shared_topology() {
  static const topology::Topology topo = [] {
    topology::GeneratorConfig cfg;
    cfg.seed = 42;
    return topology::generate(cfg);
  }();
  return topo;
}

void BM_GenerateTopology(benchmark::State& state) {
  topology::GeneratorConfig cfg;
  cfg.stub_count = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto topo = topology::generate(cfg);
    benchmark::DoNotOptimize(topo.links.size());
    cfg.seed++;
  }
}
BENCHMARK(BM_GenerateTopology)->Arg(100)->Arg(400);

void BM_ValleyFreeCompute(benchmark::State& state) {
  const auto& topo = shared_topology();
  const routing::ValleyFreeRouter router(topo);
  topology::AsId dest = 0;
  for (auto _ : state) {
    const auto table = router.compute(dest, net::Family::kIPv4);
    benchmark::DoNotOptimize(table.length[dest]);
    dest = (dest + 1) % static_cast<topology::AsId>(topo.ases.size());
  }
}
BENCHMARK(BM_ValleyFreeCompute);

void BM_RibLongestPrefixMatch(benchmark::State& state) {
  const auto rib = bgp::Rib::from_topology(shared_topology());
  std::uint32_t addr = 0x01010001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rib.origin(net::IPv4Addr(addr)));
    addr += 0x00010007;  // walk across prefixes
    if (addr > 0x20000000) addr = 0x01010001;
  }
}
BENCHMARK(BM_RibLongestPrefixMatch);

void BM_EditDistance(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  net::AsPath a, b;
  for (std::size_t i = 0; i < len; ++i) {
    a.emplace_back(static_cast<std::uint32_t>(i + 1));
    b.emplace_back(static_cast<std::uint32_t>(i % 2 == 0 ? i + 1 : i + 100));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::edit_distance(a, b));
  }
}
BENCHMARK(BM_EditDistance)->Arg(4)->Arg(8)->Arg(16);

// Ablation: exact string inequality is ~10x cheaper than edit distance and
// detects the same change *events*; edit distance additionally grades their
// magnitude (the paper uses the distance only as a nonzero indicator).
void BM_ChangeDetect_ExactEquality(benchmark::State& state) {
  net::AsPath a{net::Asn(1), net::Asn(2), net::Asn(3), net::Asn(4)};
  net::AsPath b{net::Asn(1), net::Asn(2), net::Asn(4)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(a == b);
  }
}
BENCHMARK(BM_ChangeDetect_ExactEquality);

void BM_ChangeDetect_EditDistance(benchmark::State& state) {
  net::AsPath a{net::Asn(1), net::Asn(2), net::Asn(3), net::Asn(4)};
  net::AsPath b{net::Asn(1), net::Asn(2), net::Asn(4)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::edit_distance(a, b) != 0);
  }
}
BENCHMARK(BM_ChangeDetect_EditDistance);

void BM_DiurnalRatio(benchmark::State& state) {
  std::vector<double> series;
  for (int i = 0; i < 7 * 96; ++i) {
    const double hour = (i % 96) / 4.0;
    series.push_back(80.0 + 20.0 * std::exp(-(hour - 20) * (hour - 20) / 8));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::diurnal_power_ratio(series, 96.0).ratio);
  }
}
BENCHMARK(BM_DiurnalRatio);

void BM_Traceroute(benchmark::State& state) {
  static simnet::Network* net = [] {
    simnet::NetworkConfig cfg;
    cfg.topology.server_count = 40;
    auto* n = new simnet::Network(cfg);
    std::vector<topology::ServerId> servers;
    for (topology::ServerId s = 0; s < n->topo().servers.size(); ++s) {
      servers.push_back(s);
    }
    n->prepare_full_mesh(servers);
    return n;
  }();
  probe::TracerouteEngine engine(*net, {}, stats::Rng(1));
  topology::ServerId dst = 1;
  std::int64_t t = 0;
  for (auto _ : state) {
    auto rec = engine.run(0, dst, net::Family::kIPv4, net::SimTime(t),
                          probe::TracerouteMethod::kParis);
    benchmark::DoNotOptimize(rec.has_value());
    dst = 1 + (dst % 39);
    t += net::kThreeHours;
  }
}
BENCHMARK(BM_Traceroute);

}  // namespace

BENCHMARK_MAIN();
