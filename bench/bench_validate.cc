// Times the detector validation harness (core/validate.h): the seeded
// scenario matrix of event-driven congestion overlays — flash crowds,
// failure cascades, bufferbloat, maintenance traps — each a full
// deployment + ping campaign + survey + follow-up localization, scored
// against the ground-truth ledger. Prints per-scenario wall time and the
// precision/recall table; --fast runs the mini matrix the CI gate uses,
// the default runs the full one.
#include <chrono>

#include "bench/common.h"
#include "core/validate.h"

using namespace s2s;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  const bench::ObsSession obs_session("bench_validate", opt);
  bench::print_header("Detector validation: precision/recall matrix", opt);

  auto pool = bench::make_pool(opt);
  core::HarnessOptions harness;
  harness.seed = opt.seed;
  harness.pool = &pool;
  const auto specs = core::make_scenario_matrix(/*full=*/!opt.fast);
  std::printf("matrix: %s, %zu scenarios\n\n", opt.fast ? "fast" : "full",
              specs.size());

  core::ValidationStudy study;
  study.seed = harness.seed;
  study.full_matrix = !opt.fast;
  using Clock = std::chrono::steady_clock;
  const auto t_begin = Clock::now();
  for (const auto& spec : specs) {
    const auto t0 = Clock::now();
    study.scenarios.push_back(core::run_scenario(spec, harness));
    const auto& s = study.scenarios.back();
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    std::printf("%-20s %7.1f ms  truth %3zu flagged %3zu  p %.3f r %.3f\n",
                s.name.c_str(), ms, s.truth_pairs, s.flagged_pairs,
                s.precision, s.recall);
  }
  const double total_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t_begin)
          .count();

  // Re-run through run_matrix for the aggregate roll-up (cheap relative
  // to printing; keeps the aggregation logic on one code path).
  study = core::run_matrix(specs, harness);
  study.full_matrix = !opt.fast;
  std::printf("\nper-kind pair recall:\n");
  for (const auto& [name, ks] : study.kinds) {
    std::printf("  %-22s %zu/%zu (%.3f)\n", name.c_str(), ks.flagged_pairs,
                ks.truth_pairs, ks.pair_recall());
  }
  std::printf("aggregates: diurnal recall %.3f, maintenance fp rate %.3f\n",
              study.diurnal_recall, study.maintenance_fp_rate);
  std::printf("total: %.1f ms (%.1f ms/scenario)\n", total_ms,
              total_ms / static_cast<double>(specs.size()));

  const auto gates = core::check_gates(study);
  std::printf("gates: %s\n", gates.pass ? "pass" : "FAIL");
  for (const auto& v : gates.violations) {
    std::printf("  violation: %s\n", v.c_str());
  }
  return gates.pass ? 0 : 1;
}
