// bench_live — delta pickup vs full batch reload per appended epoch
// (DESIGN.md section 16).
//
// A live shard appends one epoch at a time, and the serving tier has
// two ways to bring a Dataset up to the new watermark:
//
//   batch:       what a SIGHUP reload does — re-read the whole shard,
//                CRC every sealed byte, rebuild the timeline / ping
//                stores and the incremental state from record zero;
//   incremental: what the daemon's delta pickup does — clone_advanced()
//                copies the published snapshot and decodes, CRCs and
//                folds ONLY the newly sealed tail blocks.
//
// Both arms are driven against the same open shard at the same
// watermarks, and every pickup is checked against the fresh load's
// digest, so the measured clone provably serves the same bytes. With a
// week of 15-minute history the reload re-folds ~672x the records per
// appended epoch; the acceptance gate is the pickup at least 5x faster.
//
// Prints a JSON document and writes it to BENCH_live.json (override
// with --report PATH, disable with --no-report); "speedup" is the
// gated key.
//
//   bench_live [--fast] [--days N] [--pairs N] [--reloads N]
//              [--report PATH] [--no-report]
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "live/open_shard.h"
#include "obs/json.h"
#include "obs/run_report.h"
#include "probe/campaign.h"
#include "simnet/network.h"
#include "svc/dataset.h"

namespace {

using Clock = std::chrono::steady_clock;

double us_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace s2s;

  double days = 7.0;
  std::size_t max_pairs = 24;
  std::size_t reloads = 8;  // measured appends (each arm runs once per)
  std::string report_path = "BENCH_live.json";
  bool want_report = true;

  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (!std::strcmp(argv[i], "--fast")) {
      days = 2.0;
      max_pairs = 12;
      reloads = 4;
    } else if (!std::strcmp(argv[i], "--days")) {
      days = std::atof(next());
    } else if (!std::strcmp(argv[i], "--pairs")) {
      max_pairs = static_cast<std::size_t>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--reloads")) {
      reloads = static_cast<std::size_t>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--report")) {
      report_path = next();
    } else if (!std::strcmp(argv[i], "--no-report")) {
      want_report = false;
    } else {
      std::fprintf(stderr,
                   "usage: bench_live [--fast] [--days N] [--pairs N]\n"
                   "                  [--reloads N] [--report PATH]"
                   " [--no-report]\n");
      return 2;
    }
  }

  // One campaign, records grouped by epoch so the shard can be grown
  // one sealed epoch at a time.
  svc::DatasetConfig cfg;
  simnet::Network net(svc::dataset_net_config(cfg));
  const auto pairs = svc::fixture_pairs(net.topo(), max_pairs);
  probe::PingCampaignConfig ping;
  ping.start_day = cfg.ping_start_day;
  ping.days = days;
  ping.interval_s = cfg.ping_interval_s;
  ping.seed = 31;
  std::vector<std::vector<probe::PingRecord>> epochs;
  std::vector<probe::PingRecord> current;
  ping.on_epoch = [&](std::size_t) {
    epochs.push_back(std::move(current));
    current.clear();
  };
  probe::PingCampaign campaign(net, ping, pairs);
  campaign.run([&](const probe::PingRecord& r) { current.push_back(r); });
  std::size_t records = 0;
  for (const auto& e : epochs) records += e.size();
  if (epochs.size() <= reloads || records == 0) {
    std::fprintf(stderr, "bench_live: campaign produced too few epochs\n");
    return 1;
  }

  const std::string shard =
      "/tmp/bench_live_" + std::to_string(::getpid()) + ".s2sb";
  cfg.archive_path = shard;
  live::OpenShardWriter writer(shard, {});
  if (!writer.ok()) {
    std::fprintf(stderr, "bench_live: %s\n", writer.error().c_str());
    return 1;
  }
  std::string error;
  const std::size_t head = epochs.size() - reloads;
  for (std::size_t e = 0; e < head; ++e) {
    for (const auto& r : epochs[e]) writer.write(r);
    if (!writer.seal(static_cast<std::int64_t>(e), error)) {
      std::fprintf(stderr, "bench_live: seal: %s\n", error.c_str());
      return 1;
    }
  }

  auto snapshot = std::make_shared<svc::Dataset>(cfg, &net);
  if (!snapshot->load(error) || !snapshot->live()) {
    std::fprintf(stderr, "bench_live: prefill load: %s\n", error.c_str());
    return 1;
  }

  std::vector<double> pickup_us, reload_us;
  for (std::size_t e = head; e < epochs.size(); ++e) {
    for (const auto& r : epochs[e]) writer.write(r);
    if (!writer.seal(static_cast<std::int64_t>(e), error)) {
      std::fprintf(stderr, "bench_live: seal: %s\n", error.c_str());
      return 1;
    }

    auto t0 = Clock::now();
    auto advanced = snapshot->clone_advanced(error);
    pickup_us.push_back(us_since(t0));
    if (!advanced) {
      std::fprintf(stderr, "bench_live: pickup at epoch %zu: %s\n", e,
                   error.c_str());
      return 1;
    }

    t0 = Clock::now();
    auto fresh = std::make_shared<svc::Dataset>(cfg, &net);
    const bool loaded = fresh->load(error);
    reload_us.push_back(us_since(t0));
    if (!loaded) {
      std::fprintf(stderr, "bench_live: reload at epoch %zu: %s\n", e,
                   error.c_str());
      return 1;
    }
    // The pickup must provably serve the same state as the reload.
    if (advanced->digest() != fresh->digest()) {
      std::fprintf(stderr, "bench_live: digest mismatch at epoch %zu\n", e);
      return 1;
    }
    snapshot = std::move(advanced);
  }

  auto mean = [](const std::vector<double>& v) {
    double s = 0.0;
    for (const double x : v) s += x;
    return v.empty() ? 0.0 : s / static_cast<double>(v.size());
  };
  const double pickup_mean = mean(pickup_us);
  const double reload_mean = mean(reload_us);
  const double speedup = pickup_mean > 0.0 ? reload_mean / pickup_mean : 0.0;

  obs::json::Writer w;
  w.begin_object();
  w.key("bench").value("live");
  w.key("epochs").value(static_cast<std::uint64_t>(epochs.size()));
  w.key("pairs").value(static_cast<std::uint64_t>(pairs.size()));
  w.key("records").value(static_cast<std::uint64_t>(records));
  w.key("sealed_bytes").value(writer.watermark().sealed_bytes);
  w.key("measured_epochs").value(static_cast<std::uint64_t>(reloads));
  w.key("pickup_per_epoch_us").value(pickup_mean);
  w.key("reload_per_epoch_us").value(reload_mean);
  w.key("speedup").value(speedup);
  w.key("live_pairs")
      .value(static_cast<std::uint64_t>(
          snapshot->live_state() ? snapshot->live_state()->pairs_tracked()
                                 : 0));
  w.end_object();

  const std::string json = w.str();
  std::printf("%s\n", json.c_str());
  std::remove(shard.c_str());
  live::remove_watermark_file(shard);
  if (want_report && !obs::write_text_file(report_path, json)) {
    std::fprintf(stderr, "bench_live: cannot write %s\n",
                 report_path.c_str());
    return 1;
  }
  return 0;
}
