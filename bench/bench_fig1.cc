// Reproduces Figure 1: an illustrative six-month RTT timeline between one
// dual-stack server pair exhibiting (a) level shifts caused by AS-path
// changes and (b) a window of daily oscillation caused by a congested
// link, over both IPv4 and IPv6.
#include "bench/common.h"

#include "core/change_detect.h"
#include "stats/fft.h"

using namespace s2s;

int main(int argc, char** argv) {
  auto opt = bench::Options::parse(argc, argv);
  const bench::ObsSession obs_session("bench_fig1", opt);
  if (opt.days > 180.0) opt.days = 180.0;  // the figure shows six months
  bench::print_header(
      "Figure 1: illustrative server-to-server RTT timeline", opt);

  auto deployment = bench::make_deployment(opt);
  const auto store = bench::run_long_term(deployment, opt);

  // Pick the pair whose IPv4 timeline shows the strongest combination of
  // level shifts (path changes) and diurnal energy — the paper's
  // Hong Kong -> Osaka pair was chosen the same way, by eyeballing
  // interesting candidates.
  struct Best {
    topology::ServerId src = topology::kInvalidId;
    topology::ServerId dst = topology::kInvalidId;
    double score = -1.0;
  } best;
  store.for_each([&](topology::ServerId s, topology::ServerId d,
                     net::Family fam, const core::TraceTimeline& tl) {
    if (fam != net::Family::kIPv4 || tl.obs.size() < 100) return;
    std::vector<double> rtts;
    for (const auto& o : tl.obs) rtts.push_back(o.rtt_ms());
    const double diurnal = stats::diurnal_power_ratio(rtts, 8.0).ratio;
    const double changes = static_cast<double>(core::count_changes(tl));
    const double score = changes + 20.0 * diurnal;
    if (score > best.score) best = {s, d, score};
  });
  if (best.src == topology::kInvalidId) {
    std::printf("no qualifying pair at this scale; rerun with more pairs\n");
    return 0;
  }

  const auto& topo = deployment.topo();
  const auto& src_city = topo.cities[topo.servers[best.src].city];
  const auto& dst_city = topo.cities[topo.servers[best.dst].city];
  std::printf("pair: %s,%s -> %s,%s (paper used Hong Kong -> Osaka)\n",
              src_city.name.c_str(), src_city.country.c_str(),
              dst_city.name.c_str(), dst_city.country.c_str());

  for (net::Family fam : {net::Family::kIPv4, net::Family::kIPv6}) {
    const auto* tl = store.find(best.src, best.dst, fam);
    if (tl == nullptr) continue;
    std::printf("\n# %s timeline: epoch(3h-grid)\tRTT(ms)\tpath-id\n",
                net::to_string(fam).data());
    // Daily downsample keeps the printout readable; the level shifts and
    // the diurnal band both survive it.
    for (std::size_t i = 0; i < tl->obs.size(); i += 8) {
      const auto& o = tl->obs[i];
      std::printf("%u\t%.1f\t%u\n", o.epoch, o.rtt_ms(), tl->global_path(o));
    }
    const auto changes = core::count_changes(*tl);
    std::vector<double> rtts;
    for (const auto& o : tl->obs) rtts.push_back(o.rtt_ms());
    std::printf("# unique AS paths: %zu, changes: %zu, diurnal ratio: %.2f\n",
                tl->unique_paths(), changes,
                stats::diurnal_power_ratio(rtts, 8.0).ratio);
  }
  std::printf(
      "\npaper shape: level shifts at AS-path changes (IPv4 baseline jumps\n"
      "  >100 ms when rerouted via another continent) and a multi-day window\n"
      "  of daily oscillation shared by both protocols.\n");
  return 0;
}
