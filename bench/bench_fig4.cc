// Reproduces Figure 4: decile heat maps of the increase in *baseline*
// (10th-percentile) RTT of each sub-optimal AS path relative to the best
// path of its timeline, against the path's lifetime — IPv4 and IPv6.
// Also prints the Section 4.2 best-path-criterion ablation (stddev).
#include "bench/common.h"

#include "core/routing_study.h"
#include "stats/heatmap.h"

using namespace s2s;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  const bench::ObsSession obs_session("bench_fig4", opt);
  bench::print_header(
      "Figure 4: baseline-RTT penalty vs AS-path lifetime (heat map)", opt);

  auto deployment = bench::make_deployment(opt);
  const auto store = bench::run_long_term(deployment, opt);
  auto pool = bench::make_pool(opt);
  core::RoutingStudyConfig cfg;
  cfg.min_observations = bench::qualifying_observations(opt);
  const auto study = core::run_routing_study(store, cfg, &pool);

  for (const net::Family fam : {net::Family::kIPv4, net::Family::kIPv6}) {
    const auto& f = study.of(fam);
    if (f.delta_p10_ms.empty()) continue;
    const stats::DecileHeatmap map(f.lifetime_hours_p10, f.delta_p10_ms);
    std::printf("\n--- %s (cells are %% of all sub-optimal paths) ---\n",
                net::to_string(fam).data());
    std::printf("%s", map.to_table("lifetime (hours)",
                                   "delta p10 RTT (ms)").c_str());
    // Correlation direction the paper highlights: short-lived paths carry
    // the large penalties (top-left mass), long-lived ones are near-best.
    const double top_left = map.percent(0, map.y_bins() - 1);
    const double bottom_right =
        map.percent(map.x_bins() - 1, 0);
    std::printf("shape check: top-left (short-lived, worst decile) %.2f%% vs"
                " top-right %.2f%%\n",
                top_left, map.percent(map.x_bins() - 1, map.y_bins() - 1));
    (void)bottom_right;
    const stats::Ecdf d10(f.delta_p10_ms);
    std::printf("paper: 10%% of paths suffer >= %.1f ms (v4 48.3 / v6 59.0);"
                " measured p90 = %.1f ms\n",
                fam == net::Family::kIPv4 ? 48.3 : 59.0, d10.quantile(0.9));
    std::printf("paper: 20%% of paths suffer >= ~25 ms; measured p80 = %.1f"
                " ms\n", d10.quantile(0.8));
    // Ablation: standard deviation as the best-path criterion.
    const stats::Ecdf dsd(f.delta_stddev_ms);
    if (!dsd.empty()) {
      std::printf("ablation (stddev criterion): paper <20%% of paths have"
                  " >=20 ms stddev increase; measured %.1f%%\n",
                  100.0 * dsd.tail_at_least(20.0));
    }
  }
  return 0;
}
