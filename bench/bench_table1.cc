// Reproduces Table 1: traceroute completeness and data-quality summary
// between dual-stack servers, plus the Section 2.1 AS-loop rates and the
// classic-vs-Paris ablation.
#include "bench/common.h"

namespace {

using namespace s2s;

void print_family(const char* name, const core::Table1Counts::PerFamily& f,
                  double paper_complete_as, double paper_missing_as,
                  double paper_missing_ip, double paper_loops) {
  const double analyzed = static_cast<double>(
      f.complete_as + f.missing_as + f.missing_ip);
  std::printf("%s: collected=%zu complete=%.1f%%\n", name, f.collected,
              100.0 * f.complete / static_cast<double>(f.collected));
  auto row = [&](const char* label, std::size_t count, double paper) {
    std::printf("  %-28s measured %6.2f%%   paper %6.2f%%\n", label,
                100.0 * static_cast<double>(count) / analyzed, paper);
  };
  row("complete AS-level data", f.complete_as, paper_complete_as);
  row("missing AS-level data", f.missing_as, paper_missing_as);
  row("missing IP-level data", f.missing_ip, paper_missing_ip);
  std::printf("  %-28s measured %6.2f%%   paper %6.2f%%\n",
              "AS-path loops (excluded)",
              100.0 * static_cast<double>(f.as_loops) /
                  static_cast<double>(f.complete),
              paper_loops);
}

}  // namespace

int main(int argc, char** argv) {
  auto opt = bench::Options::parse(argc, argv);
  const bench::ObsSession obs_session("bench_table1", opt);
  bench::print_header("Table 1: traceroute data-quality summary", opt);

  auto deployment = bench::make_deployment(opt);
  const auto store = bench::run_long_term(deployment, opt);
  const auto& t1 = store.table1();

  print_family("IPv4", t1.v4, 70.30, 1.58, 28.12, 2.16);
  print_family("IPv6", t1.v6, 64.03, 3.32, 32.65, 5.50);

  // Ablation: classic throughout vs Paris throughout (loop rates).
  std::printf("\nablation: traceroute method vs AS-loop rate (IPv4)\n");
  for (const double switch_day : {-1.0, 0.0}) {
    probe::TracerouteCampaignConfig cfg;
    cfg.days = std::min(opt.days, 40.0);
    cfg.paris_switch_day = switch_day;  // -1: classic only; 0: Paris only
    cfg.probe_ipv6 = false;
    cfg.seed = opt.seed + 13;
    probe::TracerouteCampaign campaign(*deployment.net, cfg,
                                       deployment.pairs);
    core::TimelineStore ablation(deployment.topo(), deployment.net->rib(),
                                 {0.0, s2s::net::kThreeHours});
    campaign.run([&](const probe::TracerouteRecord& r) { ablation.add(r); });
    const auto& f = ablation.table1().v4;
    std::printf("  %-18s loop rate %.2f%%\n",
                switch_day < 0 ? "classic only" : "paris only",
                100.0 * static_cast<double>(f.as_loops) /
                    static_cast<double>(f.complete));
  }
  return 0;
}
