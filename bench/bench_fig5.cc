// Reproduces Figure 5: decile heat maps of the increase in 90th-percentile
// RTT of sub-optimal AS paths vs path lifetime, IPv4 and IPv6.
#include "bench/common.h"

#include "core/routing_study.h"
#include "stats/heatmap.h"

using namespace s2s;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  const bench::ObsSession obs_session("bench_fig5", opt);
  bench::print_header(
      "Figure 5: 90th-percentile RTT penalty vs AS-path lifetime", opt);

  auto deployment = bench::make_deployment(opt);
  const auto store = bench::run_long_term(deployment, opt);
  auto pool = bench::make_pool(opt);
  core::RoutingStudyConfig cfg;
  cfg.min_observations = bench::qualifying_observations(opt);
  const auto study = core::run_routing_study(store, cfg, &pool);

  for (const net::Family fam : {net::Family::kIPv4, net::Family::kIPv6}) {
    const auto& f = study.of(fam);
    if (f.delta_p90_ms.empty()) continue;
    const stats::DecileHeatmap map(f.lifetime_hours_p90, f.delta_p90_ms);
    std::printf("\n--- %s (cells are %% of all sub-optimal paths) ---\n",
                net::to_string(fam).data());
    std::printf("%s", map.to_table("lifetime (hours)",
                                   "delta p90 RTT (ms)").c_str());
    const stats::Ecdf d90(f.delta_p90_ms);
    std::printf("paper: 10%% of paths have >=70 ms increase in p90 RTT;"
                " measured p90 = %.1f ms\n", d90.quantile(0.9));
    std::printf("shape check: longest-lived decile's share of the worst-"
                "penalty row: %.2f%% (paper: smallest in its row)\n",
                map.percent(map.x_bins() - 1, map.y_bins() - 1));
  }
  return 0;
}
