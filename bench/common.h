// Shared setup for the per-figure/per-table reproduction harnesses.
//
// Every bench binary builds a simulated deployment, runs the campaigns it
// needs, and prints the paper's headline numbers next to the measured
// ones. Scale defaults are chosen so each binary finishes in about a
// minute; pass --servers/--pairs/--days/--seed to change them (shapes are
// scale-invariant, absolute counts are not).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "core/timeline.h"
#include "exec/pool.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "probe/campaign.h"
#include "simnet/network.h"
#include "stats/ecdf.h"
#include "stats/rng.h"

namespace s2s::bench {

struct Options {
  int servers = 80;
  int pairs = 600;       ///< unordered long-term pairs sampled
  double days = 485.0;   ///< long-term campaign length
  std::uint64_t seed = 42;
  bool fast = false;     ///< tiny run for smoke-testing the harness
  /// Worker threads for the parallel analysis passes: 0 = auto
  /// (S2S_THREADS env, else hardware), 1 = exact serial path. Results are
  /// byte-identical at any setting (DESIGN.md section 9).
  int threads = 0;
  bool report = true;          ///< emit a RunReport JSON on exit
  std::string report_path;     ///< default: BENCH_<tool>.json
  std::string trace_path;      ///< chrome://tracing JSON; empty = none

  static Options parse(int argc, char** argv) {
    Options opt;
    for (int i = 1; i < argc; ++i) {
      auto next = [&]() -> const char* {
        return i + 1 < argc ? argv[++i] : "";
      };
      if (!std::strcmp(argv[i], "--servers")) opt.servers = std::atoi(next());
      else if (!std::strcmp(argv[i], "--pairs")) opt.pairs = std::atoi(next());
      else if (!std::strcmp(argv[i], "--days")) opt.days = std::atof(next());
      else if (!std::strcmp(argv[i], "--seed")) {
        opt.seed = std::strtoull(next(), nullptr, 10);
      } else if (!std::strcmp(argv[i], "--threads")) {
        opt.threads = std::atoi(next());
      } else if (!std::strcmp(argv[i], "--fast")) {
        opt.fast = true;
      } else if (!std::strcmp(argv[i], "--report")) {
        opt.report_path = next();
      } else if (!std::strcmp(argv[i], "--no-report")) {
        opt.report = false;
      } else if (!std::strcmp(argv[i], "--trace")) {
        opt.trace_path = next();
      }
    }
    if (opt.fast) {
      opt.servers = 40;
      opt.pairs = 150;
      opt.days = 60.0;
    }
    return opt;
  }
};

/// RAII observability session for a bench binary. On construction it
/// resets the global registry/collector and opens a root span named after
/// the tool; on destruction it closes the span and writes the RunReport
/// JSON (default `BENCH_<tool>.json`, or --report PATH; disable with
/// --no-report) plus an optional chrome://tracing file (--trace PATH).
/// Store DataQualityReports fed to note_quality() are merged into the
/// report's data_quality section.
class ObsSession {
 public:
  ObsSession(std::string tool, const Options& opt)
      : tool_(std::move(tool)), opt_(opt) {
    obs::MetricsRegistry::global().reset();
    obs::TraceCollector::global().clear();
    root_.emplace(tool_);
    active_ = this;
  }
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  ~ObsSession() {
    root_.reset();  // commit the root span before snapshotting
    active_ = nullptr;
    if (!opt_.report) return;
    obs::RunReport report = obs::build_run_report(tool_);
    for (const auto& [name, count] : quality_.as_map()) {
      report.data_quality[name] = count;
    }
    const std::string path = opt_.report_path.empty()
                                 ? "BENCH_" + tool_ + ".json"
                                 : opt_.report_path;
    if (obs::write_text_file(path, report.to_json())) {
      obs::logf(obs::LogLevel::kInfo, "run report: %s", path.c_str());
    }
    if (!opt_.trace_path.empty() &&
        obs::write_text_file(opt_.trace_path,
                             obs::TraceCollector::global().to_chrome_json())) {
      obs::logf(obs::LogLevel::kInfo, "trace: %s", opt_.trace_path.c_str());
    }
  }

  /// Merge a store's quality counters into the final report.
  void note_quality(const core::DataQualityReport& quality) {
    quality_.merge(quality);
  }

  /// The session currently in scope, if any (so shared helpers like
  /// run_long_term can feed quality without plumbing a handle through).
  static ObsSession* active() { return active_; }

 private:
  inline static ObsSession* active_ = nullptr;

  std::string tool_;
  Options opt_;
  std::optional<obs::TraceSpan> root_;
  core::DataQualityReport quality_;
};

struct Deployment {
  std::unique_ptr<simnet::Network> net;
  std::vector<topology::ServerId> dual_stack;
  std::vector<std::pair<topology::ServerId, topology::ServerId>> pairs;

  const topology::Topology& topo() const { return net->topo(); }
};

/// Thread pool honoring --threads / S2S_THREADS for the analysis passes.
inline exec::ThreadPool make_pool(const Options& opt) {
  return exec::ThreadPool(opt.threads > 0
                              ? static_cast<unsigned>(opt.threads)
                              : 0u);
}

/// Builds the network and samples the measurement pairs (dual-stack mesh).
inline Deployment make_deployment(const Options& opt) {
  Deployment d;
  simnet::NetworkConfig cfg;
  cfg.topology.seed = opt.seed;
  cfg.topology.server_count = opt.servers;
  d.net = std::make_unique<simnet::Network>(cfg);
  for (topology::ServerId s = 0; s < d.topo().servers.size(); ++s) {
    if (d.topo().servers[s].dual_stack()) d.dual_stack.push_back(s);
  }
  std::vector<std::pair<topology::ServerId, topology::ServerId>> all;
  for (std::size_t i = 0; i < d.dual_stack.size(); ++i) {
    for (std::size_t j = i + 1; j < d.dual_stack.size(); ++j) {
      all.emplace_back(d.dual_stack[i], d.dual_stack[j]);
    }
  }
  stats::Rng rng(opt.seed * 7919 + 1);
  const double keep =
      all.empty() ? 0.0
                  : static_cast<double>(opt.pairs) /
                        static_cast<double>(all.size());
  for (const auto& p : all) {
    if (rng.uniform() < keep) d.pairs.push_back(p);
  }
  if (d.pairs.empty() && !all.empty()) d.pairs.push_back(all.front());
  return d;
}

/// Runs the paper's long-term traceroute campaign into a TimelineStore.
inline core::TimelineStore run_long_term(Deployment& d, const Options& opt) {
  probe::TracerouteCampaignConfig cfg;
  cfg.days = opt.days;
  cfg.seed = opt.seed + 7;
  probe::TracerouteCampaign campaign(*d.net, cfg, d.pairs);
  core::TimelineStore store(d.topo(), d.net->rib(),
                            {0.0, net::kThreeHours});
  obs::logf(obs::LogLevel::kInfo,
            "long-term campaign: %zu ordered pairs, %.0f days",
            d.pairs.size() * 2, opt.days);
  campaign.run([&](const probe::TracerouteRecord& r) { store.add(r); });
  if (ObsSession* session = ObsSession::active()) {
    session->note_quality(store.quality());
  }
  return store;
}

/// Minimum observations for a timeline to qualify (the paper's ">=400 of
/// 485 days" filter, scaled to the configured campaign length).
inline std::size_t qualifying_observations(const Options& opt) {
  // 8 probes/day * completion ~0.75 * (400/485 of the configured days).
  return static_cast<std::size_t>(opt.days * 8.0 * 0.75 * 400.0 / 485.0 * 0.8);
}

inline void print_header(const char* experiment, const Options& opt) {
  std::printf("== %s ==\n", experiment);
  std::printf("deployment: %d servers, %d sampled pairs, %.0f days, seed %llu\n",
              opt.servers, opt.pairs, opt.days,
              static_cast<unsigned long long>(opt.seed));
}

/// Prints an ECDF as "x F(x)" pairs at the given quantile knots.
inline void print_ecdf(const char* name, const stats::Ecdf& ecdf) {
  std::printf("%s (n=%zu):\n", name, ecdf.size());
  for (double q : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99}) {
    std::printf("  p%-4.0f %10.3f\n", q * 100, ecdf.quantile(q));
  }
}

}  // namespace s2s::bench
