// Dual-stack advisor (Section 6): for every dual-stack server pair,
// measure both protocols simultaneously and report where switching the
// protocol would cut the median RTT — the paper found reductions of up to
// 50 ms on a meaningful fraction of pairs.
//
//   ./build/examples/dualstack_advisor [--threads N]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/dualstack.h"
#include "exec/pool.h"
#include "probe/campaign.h"
#include "stats/summary.h"

using namespace s2s;

int main(int argc, char** argv) {
  int threads = 0;  // 0 = auto (S2S_THREADS env, else hardware)
  for (int i = 1; i + 1 < argc; ++i) {
    if (!std::strcmp(argv[i], "--threads")) threads = std::atoi(argv[++i]);
  }
  exec::ThreadPool pool(threads > 0 ? static_cast<unsigned>(threads) : 0u);
  simnet::NetworkConfig config;
  config.topology.seed = 3;
  config.topology.server_count = 50;
  simnet::Network net(config);
  const auto& topo = net.topo();

  std::vector<std::pair<topology::ServerId, topology::ServerId>> pairs;
  for (topology::ServerId a = 0; a < topo.servers.size(); ++a) {
    for (topology::ServerId b = a + 1; b < topo.servers.size(); ++b) {
      if (topo.servers[a].dual_stack() && topo.servers[b].dual_stack()) {
        pairs.emplace_back(a, b);
      }
    }
  }

  probe::TracerouteCampaignConfig cfg;
  cfg.days = 30.0;
  probe::TracerouteCampaign campaign(net, cfg, pairs);
  core::TimelineStore store(topo, net.rib(), {0.0, net::kThreeHours});
  std::printf("measuring %zu dual-stack pairs over both protocols for"
              " %.0f days...\n", pairs.size(), cfg.days);
  campaign.run([&](const probe::TracerouteRecord& r) { store.add(r); });

  const auto study = core::run_dualstack_study(store, &pool);
  std::printf("\nmatched %llu simultaneous v4/v6 samples on %zu pairs\n",
              static_cast<unsigned long long>(study.samples_matched),
              study.pairs_matched);
  std::printf("similar RTTs (|diff| < 10 ms): %.0f%% of samples\n",
              100.0 * (study.diff_all.at(10.0) - study.diff_all.at(-10.0)));

  // Advice: per-pair median differences, largest wins first.
  std::vector<double> sorted_diffs = study.pair_median_diff;
  std::sort(sorted_diffs.begin(), sorted_diffs.end(),
            [](double a, double b) { return std::abs(a) > std::abs(b); });
  std::printf("\ntop protocol-switch opportunities (per-pair median RTT"
              " difference):\n");
  std::size_t shown = 0;
  for (double diff : sorted_diffs) {
    if (std::abs(diff) < 10.0 || shown >= 10) break;
    std::printf("  %+7.1f ms  ->  prefer %s\n", diff,
                diff > 0 ? "IPv6 (v4 is slower)" : "IPv4 (v6 is slower)");
    ++shown;
  }
  std::size_t v6_wins = 0, v4_wins = 0;
  for (double diff : study.pair_median_diff) {
    v6_wins += diff >= 50.0;
    v4_wins += diff <= -50.0;
  }
  std::printf("\npairs where switching saves >=50 ms: to IPv6 %zu, to IPv4"
              " %zu (of %zu)\n",
              v6_wins, v4_wins, study.pair_median_diff.size());
  std::printf("paper: 3.7%% of endpoint pairs can cut >=50 ms by using IPv6,"
              " 8.5%% by using IPv4.\n");
  return 0;
}
