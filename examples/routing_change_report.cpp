// Routing-change report: a condensed Section 4 analysis an operator could
// run over their own mesh — which server pairs suffered the worst
// baseline-RTT regressions from sub-optimal AS paths, and for how long.
//
//   ./build/examples/routing_change_report [days] [pairs]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/routing_study.h"
#include "probe/campaign.h"
#include "stats/rng.h"

using namespace s2s;

int main(int argc, char** argv) {
  const double days = argc > 1 ? std::atof(argv[1]) : 120.0;
  const int want_pairs = argc > 2 ? std::atoi(argv[2]) : 300;

  simnet::NetworkConfig config;
  config.topology.server_count = 60;
  simnet::Network net(config);
  const auto& topo = net.topo();

  // Sample dual-stack pairs, as the paper's long-term mesh does.
  std::vector<std::pair<topology::ServerId, topology::ServerId>> pairs;
  stats::Rng rng(99);
  for (topology::ServerId a = 0; a < topo.servers.size(); ++a) {
    for (topology::ServerId b = a + 1; b < topo.servers.size(); ++b) {
      if (topo.servers[a].dual_stack() && topo.servers[b].dual_stack()) {
        pairs.emplace_back(a, b);
      }
    }
  }
  while (static_cast<int>(pairs.size()) > want_pairs) {
    pairs.erase(pairs.begin() +
                static_cast<std::ptrdiff_t>(rng.below(pairs.size())));
  }

  probe::TracerouteCampaignConfig campaign_cfg;
  campaign_cfg.days = days;
  probe::TracerouteCampaign campaign(net, campaign_cfg, pairs);
  core::TimelineStore store(topo, net.rib(), {0.0, net::kThreeHours});
  std::printf("probing %zu ordered pairs for %.0f days...\n",
              pairs.size() * 2, days);
  campaign.run([&](const probe::TracerouteRecord& r) { store.add(r); });

  // Rank pairs by time spent on paths >= 20 ms worse than their best.
  struct Row {
    topology::ServerId src, dst;
    net::Family family;
    double bad_hours = 0.0;
    double worst_delta = 0.0;
    std::size_t changes = 0;
  };
  std::vector<Row> rows;
  store.for_each([&](topology::ServerId s, topology::ServerId d,
                     net::Family fam, const core::TraceTimeline& timeline) {
    if (timeline.obs.size() < 100) return;
    const auto analysis = core::analyze_timeline(timeline, 3.0);
    if (analysis.buckets.size() < 2) return;
    const auto& best =
        analysis.buckets[analysis.best(core::BestPathCriterion::kP10)];
    Row row{s, d, fam, 0.0, 0.0, analysis.changes};
    for (const auto& bucket : analysis.buckets) {
      const double delta = bucket.p10 - best.p10;
      if (delta >= 20.0) row.bad_hours += bucket.lifetime_hours;
      row.worst_delta = std::max(row.worst_delta, delta);
    }
    if (row.bad_hours > 0.0) rows.push_back(row);
  });
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.bad_hours > b.bad_hours; });

  std::printf("\nworst pairs by time on a >=20 ms sub-optimal path:\n");
  std::printf("%-28s %-5s %10s %12s %8s\n", "pair", "proto", "bad hours",
              "worst +ms", "changes");
  for (std::size_t i = 0; i < rows.size() && i < 15; ++i) {
    const Row& row = rows[i];
    const auto& a = topo.cities[topo.servers[row.src].city];
    const auto& b = topo.cities[topo.servers[row.dst].city];
    char name[64];
    std::snprintf(name, sizeof(name), "%s->%s", a.name.c_str(),
                  b.name.c_str());
    std::printf("%-28s %-5s %10.0f %12.1f %8zu\n", name,
                net::to_string(row.family).data(), row.bad_hours,
                row.worst_delta, row.changes);
  }
  std::printf("\n(%zu of %zu analyzed timelines ever sat on a >=20 ms "
              "sub-optimal path)\n",
              rows.size(), store.timeline_count());
  return 0;
}
