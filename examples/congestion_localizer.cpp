// Congestion localizer: the Section 5 pipeline as an operator tool —
// survey a mesh with pings, flag pairs with consistent (diurnal)
// congestion, re-probe them with traceroutes, and print the congested
// IP-IP links with their inferred owners and classification.
//
//   ./build/examples/congestion_localizer [--threads N]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/congestion_detect.h"
#include "core/congestion_study.h"
#include "core/localize.h"
#include "core/ownership.h"
#include "core/segment_series.h"
#include "exec/pool.h"
#include "probe/campaign.h"

using namespace s2s;

int main(int argc, char** argv) {
  int threads = 0;  // 0 = auto (S2S_THREADS env, else hardware)
  for (int i = 1; i + 1 < argc; ++i) {
    if (!std::strcmp(argv[i], "--threads")) threads = std::atoi(argv[++i]);
  }
  exec::ThreadPool pool(threads > 0 ? static_cast<unsigned>(threads) : 0u);
  simnet::NetworkConfig config;
  config.topology.seed = 11;
  config.topology.server_count = 70;
  // Make congestion a little denser than the defaults so the demo always
  // has something to show.
  config.congestion.internal_fraction = 0.01;
  config.congestion.private_interconnect_fraction = 0.02;
  simnet::Network net(config);
  const auto& topo = net.topo();

  std::vector<std::pair<topology::ServerId, topology::ServerId>> pairs;
  for (topology::ServerId a = 0; a < topo.servers.size(); ++a) {
    for (topology::ServerId b = a + 1; b < topo.servers.size(); ++b) {
      pairs.emplace_back(a, b);
    }
  }

  // Step 1: one week of 15-minute pings.
  probe::PingCampaignConfig ping_cfg;
  ping_cfg.start_day = 0.0;
  probe::PingCampaign pings(net, ping_cfg, pairs);
  core::PingSeriesStore ping_store(0.0, net::kFifteenMinutes, pings.epochs());
  std::printf("step 1: pinging %zu pairs every 15 minutes for a week...\n",
              pairs.size());
  pings.run([&](const probe::PingRecord& r) { ping_store.add(r); });
  const auto survey = core::survey_congestion(ping_store, {}, &pool);
  std::printf("  IPv4: %zu/%zu pairs show consistent congestion\n",
              survey.v4.consistent, survey.v4.pairs_assessed);
  std::printf("  IPv6: %zu/%zu\n", survey.v6.consistent,
              survey.v6.pairs_assessed);

  if (survey.flagged.empty()) {
    std::printf("nothing flagged; try another seed\n");
    return 0;
  }

  // Step 2: three weeks of 30-minute traceroutes on the flagged pairs.
  std::vector<std::pair<topology::ServerId, topology::ServerId>> flagged;
  for (const auto& f : survey.flagged) flagged.emplace_back(f.src, f.dst);
  probe::TracerouteCampaignConfig follow_cfg;
  follow_cfg.start_day = 7.0;
  follow_cfg.days = 21.0;
  follow_cfg.interval_s = net::kThirtyMinutes;
  follow_cfg.paris_switch_day = 0.0;
  probe::TracerouteCampaign followup(net, follow_cfg, flagged);
  core::SegmentSeriesStore segments(7.0, net::kThirtyMinutes,
                                    followup.epochs());
  const auto rels = bgp::RelationshipTable::from_topology(topo);
  core::OwnershipInference ownership(net.rib(), rels);
  std::printf("step 2: re-probing %zu flagged pairs for three weeks...\n",
              flagged.size());
  std::vector<net::IPAddr> run;
  followup.run([&](const probe::TracerouteRecord& r) {
    segments.add(r);
    if (!r.complete) return;
    // Feed maximal responsive runs; skipping an unresponsive hop would
    // fabricate router adjacencies and poison the heuristics.
    run.clear();
    for (const auto& hop : r.hops) {
      if (hop.addr) {
        run.push_back(*hop.addr);
        continue;
      }
      if (run.size() >= 2) ownership.observe_path(run);
      run.clear();
    }
    if (run.size() >= 2) ownership.observe_path(run);
  });
  ownership.finalize();

  // Step 3: localize and classify.
  const auto localization =
      core::localize_congestion(segments, net.rib(), {}, &pool);
  const auto ixps = core::IxpDirectory::from_topology(topo);
  const core::LinkClassifier classifier(ownership, rels, ixps);
  const auto study =
      core::build_congestion_study(localization.segments, classifier, topo);

  std::printf("step 3: %zu pairs localized onto %zu unique links\n",
              localization.pairs_localized, study.links.size());
  for (const auto& link : study.links) {
    const char* kind = link.cls.kind == core::LinkKind::kInternal
                           ? "internal"
                       : link.cls.kind == core::LinkKind::kInterconnection
                           ? "interconnection"
                           : "unknown";
    std::printf("  %s -> %s  [%s%s]  owners %s/%s  overhead %.0f ms,"
                " %zu pairs cross it\n",
                link.near ? link.near->to_string().c_str() : "?",
                link.far ? link.far->to_string().c_str() : "?", kind,
                link.cls.public_ixp ? ", public IXP" : "",
                link.cls.owner_near ? link.cls.owner_near->to_string().c_str()
                                    : "?",
                link.cls.owner_far ? link.cls.owner_far->to_string().c_str()
                                   : "?",
                link.overhead_ms, link.crossing_pairs);
  }
  return 0;
}
