// Quickstart: build a simulated Internet core, run a few traceroutes
// between CDN measurement servers, infer their AS paths, watch a routing
// change move the traffic onto a different path, then run a small
// campaign end to end (campaign -> persisted records -> ingest ->
// routing + dual-stack analyses) with the observability layer recording
// every stage.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart --report run_report.json --trace trace.json
//
// --report PATH (or S2S_RUN_REPORT=PATH) writes the versioned RunReport
// JSON; --trace PATH writes a chrome://tracing / Perfetto trace file.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <sstream>

#include "core/as_path_infer.h"
#include "core/dualstack.h"
#include "core/routing_study.h"
#include "core/timeline.h"
#include "exec/pool.h"
#include "faultsim/line_mangler.h"
#include "io/binrec.h"
#include "io/records_io.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "probe/campaign.h"
#include "probe/traceroute.h"
#include "simnet/network.h"

using namespace s2s;

int main(int argc, char** argv) {
  std::string report_path, trace_path;
  int threads = 0;  // 0 = auto (S2S_THREADS env, else hardware)
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (!std::strcmp(argv[i], "--report")) report_path = next();
    else if (!std::strcmp(argv[i], "--trace")) trace_path = next();
    else if (!std::strcmp(argv[i], "--threads")) threads = std::atoi(next());
  }
  if (report_path.empty()) {
    if (const char* env = std::getenv("S2S_RUN_REPORT")) report_path = env;
  }
  std::optional<obs::TraceSpan> root_span;
  root_span.emplace("quickstart");
  // 1. A small world: ~160 ASes, with 30 measurement servers.
  simnet::NetworkConfig config;
  config.topology.seed = 7;
  config.topology.tier1_count = 6;
  config.topology.transit_count = 30;
  config.topology.stub_count = 120;
  config.topology.server_count = 30;
  simnet::Network net(config);
  const auto& topo = net.topo();
  std::printf("generated %zu ASes, %zu routers, %zu links, %zu servers\n",
              topo.ases.size(), topo.routers.size(), topo.links.size(),
              topo.servers.size());

  // 2. Tell the network which pairs we will measure (it precomputes the
  //    candidate routes and the 16-month outage schedule).
  std::vector<topology::ServerId> servers;
  for (topology::ServerId s = 0; s < topo.servers.size(); ++s) {
    servers.push_back(s);
  }
  net.prepare_full_mesh(servers);

  // 3. Pick a geographically interesting pair and traceroute it, once a
  //    day for two weeks.
  const topology::ServerId src = 0, dst = 17;
  const auto& src_city = topo.cities[topo.servers[src].city];
  const auto& dst_city = topo.cities[topo.servers[dst].city];
  std::printf("\ntraceroute %s (%s) -> %s (%s), daily for 60 days:\n",
              src_city.name.c_str(), src_city.country.c_str(),
              dst_city.name.c_str(), dst_city.country.c_str());

  probe::TracerouteEngine tracer(net, {}, stats::Rng(1));
  const core::AsPathInferrer inferrer(net.rib());
  const net::Asn src_asn = topo.ases[topo.servers[src].as_id].asn;

  net::AsPath previous;
  for (int day = 0; day < 60; day += 1) {
    const auto record = tracer.run(src, dst, net::Family::kIPv4,
                                   net::SimTime::from_days(day),
                                   probe::TracerouteMethod::kParis);
    if (!record || !record->complete) continue;
    const auto inferred = inferrer.infer(*record, src_asn);
    if (inferred.as_path != previous) {
      std::printf("  day %2d: RTT %6.1f ms  AS path: %s%s\n", day,
                  record->end_to_end_rtt_ms(),
                  net::to_string(inferred.as_path).c_str(),
                  previous.empty() ? "" : "   <-- routing change");
      previous = inferred.as_path;
    }
  }

  // 4. Inspect one full traceroute, hop by hop.
  const auto record = tracer.run(src, dst, net::Family::kIPv4,
                                 net::SimTime::from_days(10),
                                 probe::TracerouteMethod::kParis);
  if (record) {
    std::printf("\none traceroute in detail (%s):\n",
                record->complete ? "complete" : "incomplete");
    int ttl = 1;
    for (const auto& hop : record->hops) {
      if (hop.addr) {
        const auto origin = net.rib().origin(*hop.addr);
        std::printf("  %2d  %-16s %7.2f ms  %s\n", ttl,
                    hop.addr->to_string().c_str(), hop.rtt_ms,
                    origin ? origin->to_string().c_str() : "(unmapped)");
      } else {
        std::printf("  %2d  *\n", ttl);
      }
      ++ttl;
    }
  }

  // 5. Persist a few records, corrupt the file the way real disks do, and
  //    read it back: the reader reports what it skipped instead of dying.
  std::stringstream file;
  io::RecordWriter writer(file);
  for (int day = 0; day < 14; ++day) {
    const auto rec = tracer.run(src, dst, net::Family::kIPv4,
                                net::SimTime::from_days(day),
                                probe::TracerouteMethod::kParis);
    if (rec) writer.write(*rec);
  }
  std::stringstream dirty;
  faultsim::LineMangler mangler({/*seed=*/3, /*corrupt_prob=*/0.4});
  for (std::string line; std::getline(file, line);) {
    dirty << mangler.mangle(std::move(line)) << '\n';
  }

  io::RecordReader reader(dirty);
  std::size_t replayed = 0;
  reader.read_all([&](const probe::TracerouteRecord&) { ++replayed; },
                  [](const probe::PingRecord&) {});
  std::printf("\nreplayed a corrupted campaign file: %zu lines, "
              "%zu records recovered, %zu malformed\n",
              reader.lines(), replayed, reader.errors());
  for (const auto& bad : reader.malformed()) {
    std::printf("  line %zu: %.60s%s\n", bad.line_number, bad.text.c_str(),
                bad.text.size() > 60 ? "..." : "");
  }

  // 6. The pipeline end to end, instrumented: a month-long campaign over
  //    a few pairs, persisted and re-ingested through the record reader
  //    into a TimelineStore, then the routing and dual-stack analyses.
  //    Every stage shows up in the trace and the run report.
  core::TimelineStore store(topo, net.rib(), {0.0, net::kThreeHours});
  {
    probe::TracerouteCampaignConfig campaign_cfg;
    campaign_cfg.days = 30.0;
    campaign_cfg.paris_switch_day = 15.0;
    campaign_cfg.seed = 11;
    const std::vector<std::pair<topology::ServerId, topology::ServerId>>
        pairs = {{0, 17}, {0, 5}, {3, 17}, {5, 9}, {9, 21}, {12, 25}};
    probe::TracerouteCampaign campaign(net, campaign_cfg, pairs);

    // Persist the campaign in both archive formats: the tab-separated
    // text form and the binary columnar `.s2sb` block format. They are
    // drop-in interchangeable at the ingest seam (same records, bit for
    // bit — DESIGN.md section 10); binary decodes several times faster
    // and mmap ingest skips the read copy entirely for on-disk archives.
    std::stringstream campaign_file;
    std::stringstream campaign_bin(std::ios::in | std::ios::out |
                                   std::ios::binary);
    io::RecordWriter campaign_writer(campaign_file);
    io::BinRecordWriter campaign_bin_writer(campaign_bin);
    campaign.run([&](const probe::TracerouteRecord& r) {
      campaign_writer.write(r);
      campaign_bin_writer.write(r);
    });
    campaign_bin_writer.finish();

    const obs::TraceSpan ingest_span("ingest");
    // Feed the analysis from the binary archive; read_records_auto sniffs
    // the format, so a text stream would work unchanged here.
    const auto ingest = io::read_records_auto(
        campaign_bin, [&](const probe::TracerouteRecord& r) { store.add(r); },
        [](const probe::PingRecord&) {});
    const auto text_bytes = campaign_file.str().size();
    const auto bin_bytes = campaign_bin.str().size();
    std::printf("\ncampaign ingested (%s): %zu records -> %zu timelines\n",
                ingest.binary ? "binary" : "text", ingest.records,
                store.timeline_count());
    std::printf("archive size: %zu bytes text, %zu bytes binary (%.1fx "
                "smaller)\n",
                text_bytes, bin_bytes,
                static_cast<double>(text_bytes) /
                    static_cast<double>(bin_bytes ? bin_bytes : 1));
  }

  exec::ThreadPool pool(threads > 0 ? static_cast<unsigned>(threads) : 0u);
  const auto routing = core::run_routing_study(store, {}, &pool);
  const auto dual = core::run_dualstack_study(store, &pool);
  std::printf("routing study: %zu v4 + %zu v6 qualifying timelines; "
              "dual-stack: %zu pairs matched\n",
              routing.v4.timelines, routing.v6.timelines, dual.pairs_matched);

  // 7. Close the root span and emit the machine-readable artifacts.
  root_span.reset();
  if (!report_path.empty()) {
    obs::RunReport run_report = obs::build_run_report("quickstart");
    for (const auto& [name, count] : store.quality().as_map()) {
      run_report.data_quality[name] = count;
    }
    if (obs::write_text_file(report_path, run_report.to_json())) {
      std::printf("\nrun report (%zu metrics, %zu nested spans): %s\n",
                  run_report.metric_count(), run_report.nested_span_count(),
                  report_path.c_str());
    }
  }
  if (!trace_path.empty() &&
      obs::write_text_file(trace_path,
                           obs::TraceCollector::global().to_chrome_json())) {
    std::printf("trace (load in chrome://tracing or ui.perfetto.dev): %s\n",
                trace_path.c_str());
  }
  return 0;
}
