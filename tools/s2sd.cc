// s2sd — the analysis query daemon (DESIGN.md section 11).
//
//   s2sd --archive <in.s2sb> [options]        # serve the archive
//   s2sd --make-fixture <out.s2sb> [options]  # write a fixture archive
//
// Serving options:
//   --host A            bind address            (default 127.0.0.1)
//   --listen-addr A     alias of --host; an address with a ':' listens
//                       on IPv6 ("::" = dual-stack wildcard)
//   --port N            listen port             (default 0 = ephemeral)
//   --reactors N        event-loop threads, each with its own poller,
//                       SO_REUSEPORT listener, and result-cache shard
//                       (default 1)
//   --no-reuseport      force the acceptor + fd-handoff fallback
//   --threads N         analysis pool width     (default 0 = auto)
//   --poll              force the poll() backend instead of epoll
//   --max-inflight N    parsed-but-unexecuted request cap (count gate)
//   --max-pending-cost N  pending-cost budget (request_cost units; 0 off)
//   --max-client-pending N  per-connection queue bound (0 = unbounded)
//   --busy-retry-ms N   base retry-after hint on busy sheds
//   --allow-damaged     serve despite a failed archive-health check
//   --cache-mb N        result cache budget in MiB
//   --read-timeout-ms N / --write-timeout-ms N
//   --slow-ms N         slow-query log threshold (end-to-end ms; 0 = off)
//   --live-poll-ms N    open-shard delta-pickup poll interval (0 = off);
//                       with a watermark sidecar present the daemon
//                       serves the sealed prefix and folds newly sealed
//                       blocks in as the writer appends
//   --slo-ms N          per-type latency SLO threshold (ms)
//   --window-s N        windowed p50/p99 merge width in seconds
//   --report PATH       RunReport JSON on shutdown (default s2sd_report.json)
//   --no-report
// Deployment provenance (must match the archive's generator):
//   --seed N --servers N --tier1 N --transit N --stub N
// Fixture options: --fast (smaller campaigns), plus the provenance flags.
//
// SIGTERM/SIGINT request a graceful drain: in-flight requests execute
// and flush before the listener closes. SIGHUP re-ingests the archive;
// a changed file changes the digest and thereby invalidates the cache.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "exec/pool.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "svc/dataset.h"
#include "svc/server.h"

namespace {

s2s::svc::Server* g_server = nullptr;

void on_drain_signal(int) {
  if (g_server != nullptr) g_server->request_drain();
}

void on_reload_signal(int) {
  if (g_server != nullptr) g_server->request_reload();
}

int usage() {
  std::fprintf(stderr,
               "usage: s2sd --archive <in.s2sb> [--host A] [--listen-addr A]\n"
               "            [--port N] [--reactors N] [--no-reuseport]\n"
               "            [--threads N] [--poll] [--max-inflight N]\n"
               "            [--max-pending-cost N] [--max-client-pending N]\n"
               "            [--busy-retry-ms N] [--allow-damaged]\n"
               "            [--cache-mb N] [--read-timeout-ms N]\n"
               "            [--write-timeout-ms N] [--slow-ms N]\n"
               "            [--live-poll-ms N]\n"
               "            [--slo-ms N] [--window-s N] [--report PATH]\n"
               "            [--no-report] [--seed N] [--servers N]\n"
               "            [--tier1 N] [--transit N] [--stub N]\n"
               "       s2sd --make-fixture <out.s2sb> [--fast] "
               "[provenance flags]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace s2s;

  std::string archive;
  std::string fixture;
  std::string host = "127.0.0.1";
  std::string report_path = "s2sd_report.json";
  bool want_report = true;
  bool fast = false;
  bool allow_damaged = false;
  int threads = 0;
  svc::DatasetConfig dataset_cfg;
  svc::ServerConfig server_cfg;

  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (!std::strcmp(argv[i], "--archive")) archive = next();
    else if (!std::strcmp(argv[i], "--make-fixture")) fixture = next();
    else if (!std::strcmp(argv[i], "--host")) host = next();
    else if (!std::strcmp(argv[i], "--listen-addr")) host = next();
    else if (!std::strcmp(argv[i], "--port")) {
      server_cfg.port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--reactors")) {
      server_cfg.reactors = static_cast<std::size_t>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--no-reuseport")) {
      server_cfg.use_reuseport = false;
    } else if (!std::strcmp(argv[i], "--threads")) {
      threads = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--poll")) {
      server_cfg.use_epoll = false;
    } else if (!std::strcmp(argv[i], "--max-inflight")) {
      server_cfg.max_inflight = static_cast<std::size_t>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--max-pending-cost")) {
      server_cfg.max_pending_cost = static_cast<std::size_t>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--max-client-pending")) {
      server_cfg.max_client_pending =
          static_cast<std::size_t>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--busy-retry-ms")) {
      server_cfg.busy_retry_after_ms = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--allow-damaged")) {
      allow_damaged = true;
    } else if (!std::strcmp(argv[i], "--cache-mb")) {
      server_cfg.cache_bytes =
          static_cast<std::size_t>(std::atoi(next())) << 20;
    } else if (!std::strcmp(argv[i], "--read-timeout-ms")) {
      server_cfg.read_timeout_ms = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--write-timeout-ms")) {
      server_cfg.write_timeout_ms = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--live-poll-ms")) {
      server_cfg.live_poll_ms = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--slow-ms")) {
      // Fractional thresholds are legal (--slow-ms 0.5 = 500us): smoke
      // tests against tiny fixtures need sub-millisecond cutoffs.
      server_cfg.slow_query_us =
          static_cast<std::int64_t>(std::atof(next()) * 1000.0);
    } else if (!std::strcmp(argv[i], "--slo-ms")) {
      server_cfg.slo_ms = std::atof(next());
    } else if (!std::strcmp(argv[i], "--window-s")) {
      server_cfg.window_seconds = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--report")) {
      report_path = next();
    } else if (!std::strcmp(argv[i], "--no-report")) {
      want_report = false;
    } else if (!std::strcmp(argv[i], "--seed")) {
      dataset_cfg.topo_seed = std::strtoull(next(), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--servers")) {
      dataset_cfg.server_count = static_cast<std::size_t>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--tier1")) {
      dataset_cfg.tier1_count = static_cast<std::size_t>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--transit")) {
      dataset_cfg.transit_count = static_cast<std::size_t>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--stub")) {
      dataset_cfg.stub_count = static_cast<std::size_t>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--fast")) {
      fast = true;
    } else {
      return usage();
    }
  }

  if (!fixture.empty()) {
    dataset_cfg.archive_path = fixture;
    svc::FixtureParams params;
    if (fast) {
      params.trace_days = 7.0;
      params.ping_days = 3.0;
      params.max_trace_pairs = 6;
      params.max_ping_pairs = 24;
    }
    std::string error;
    if (!svc::write_fixture_archive(fixture, dataset_cfg, params, error)) {
      std::fprintf(stderr, "s2sd: fixture write failed: %s\n", error.c_str());
      return 1;
    }
    std::printf("s2sd: fixture written: %s\n", fixture.c_str());
    return 0;
  }

  if (archive.empty()) return usage();
  dataset_cfg.archive_path = archive;

  obs::MetricsRegistry::global().reset();
  obs::TraceCollector::global().clear();

  svc::Dataset dataset(dataset_cfg);
  std::string error;
  if (!dataset.load(error)) {
    std::fprintf(stderr, "s2sd: cannot load %s: %s\n", archive.c_str(),
                 error.c_str());
    return 1;
  }
  // Refuse to serve an archive that ingested with damage: a daemon that
  // silently drops blocks answers queries with confidently wrong data.
  // SIGHUP reloads stay lenient (old data keeps serving on failure).
  if (const std::string damage =
          svc::archive_damage(dataset.ingest(), dataset.live());
      !damage.empty()) {
    if (allow_damaged) {
      std::fprintf(stderr, "s2sd: WARNING: serving damaged archive %s: %s\n",
                   archive.c_str(), damage.c_str());
    } else {
      std::fprintf(stderr,
                   "s2sd: refusing to serve %s: %s (run `s2s_recconv repair`"
                   " or pass --allow-damaged)\n",
                   archive.c_str(), damage.c_str());
      return 1;
    }
  }

  exec::ThreadPool pool(threads > 0 ? static_cast<unsigned>(threads) : 0u);
  server_cfg.bind_address = host;
  svc::Server server(dataset, &pool, server_cfg);
  if (!server.start(error)) {
    std::fprintf(stderr, "s2sd: %s\n", error.c_str());
    return 1;
  }
  g_server = &server;
  std::signal(SIGTERM, on_drain_signal);
  std::signal(SIGINT, on_drain_signal);
  std::signal(SIGHUP, on_reload_signal);
#ifdef SIGPIPE
  std::signal(SIGPIPE, SIG_IGN);
#endif

  if (dataset.live()) {
    std::printf("s2sd: live archive at watermark epoch %lld "
                "(%llu sealed bytes, poll %d ms)\n",
                static_cast<long long>(dataset.watermark().epoch),
                static_cast<unsigned long long>(
                    dataset.watermark().sealed_bytes),
                server_cfg.live_poll_ms);
  }
  std::printf("s2sd: listening on %s:%u (%zu records, %zu timelines, "
              "%zu ping pairs, %zu reactors%s)\n",
              host.c_str(), static_cast<unsigned>(server.port()),
              dataset.ingest().records, dataset.timelines().timeline_count(),
              dataset.pings().pair_count(), server.reactor_count(),
              server.reuseport_active() ? ", reuseport" : "");
  const auto pairs = dataset.trace_pairs();
  if (!pairs.empty()) {
    std::printf("s2sd: example pair: src=%u dst=%u family=%u\n",
                pairs.front().src, pairs.front().dst,
                static_cast<unsigned>(pairs.front().family));
  }
  std::fflush(stdout);

  {
    obs::TraceSpan root("s2sd");
    server.serve();
  }
  g_server = nullptr;

  std::printf("s2sd: drained after %llu requests (%llu reaped, %llu reloads)\n",
              static_cast<unsigned long long>(server.requests_served()),
              static_cast<unsigned long long>(server.connections_reaped()),
              static_cast<unsigned long long>(server.reloads()));

  if (want_report) {
    obs::RunReport report = obs::build_run_report("s2sd");
    report.windowed = server.windowed_snapshots();
    report.slo = server.slo_stats();
    if (obs::write_text_file(report_path, report.to_json())) {
      obs::logf(obs::LogLevel::kInfo, "run report: %s", report_path.c_str());
    } else {
      return 1;
    }
  }
  return 0;
}
