// s2s_validate: detector precision/recall validation harness.
//
// Runs the seeded scenario matrix (core/validate.h) — event-driven
// congestion overlays with ground-truth ledgers, the FFT diurnal survey
// and the localization pass — scores verdicts against the ledger, and
// writes the versioned JSON study. With --gate, exits non-zero when a CI
// floor is violated (diurnal recall, maintenance false-positive rate).
//
// Usage:
//   s2s_validate [--full] [--seed N] [--threads N] [--out PATH] [--gate]
//
// The study contains no wall-clock fields and every analysis pass merges
// fixed shards in order, so output is byte-identical at any --threads /
// S2S_THREADS setting.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/validate.h"
#include "exec/pool.h"
#include "obs/log.h"
#include "obs/run_report.h"

namespace {

void print_usage() {
  std::fprintf(
      stderr,
      "usage: s2s_validate [--full] [--seed N] [--threads N]\n"
      "                    [--out PATH] [--gate] [--report PATH]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace s2s;

  bool full = false;
  bool gate = false;
  std::uint64_t seed = 42;
  int threads = 0;
  std::string out_path = "validate_study.json";
  std::string report_path;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (!std::strcmp(argv[i], "--full")) {
      full = true;
    } else if (!std::strcmp(argv[i], "--fast")) {
      full = false;
    } else if (!std::strcmp(argv[i], "--gate")) {
      gate = true;
    } else if (!std::strcmp(argv[i], "--seed")) {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--threads")) {
      threads = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--out")) {
      out_path = next();
    } else if (!std::strcmp(argv[i], "--report")) {
      report_path = next();
    } else {
      print_usage();
      return 2;
    }
  }

  exec::ThreadPool pool(threads > 0 ? static_cast<unsigned>(threads) : 0u);
  core::HarnessOptions opt;
  opt.seed = seed;
  opt.pool = &pool;
  const auto specs = core::make_scenario_matrix(full);

  std::printf("== s2s_validate ==\n");
  std::printf("matrix: %s (%zu scenarios), seed %llu, %u threads\n",
              full ? "full" : "fast", specs.size(),
              static_cast<unsigned long long>(seed), pool.thread_count());

  core::ValidationStudy study = core::run_matrix(specs, opt);
  study.full_matrix = full;

  std::printf("%-20s %-8s %5s %5s %5s %5s %5s  %9s %9s %7s  %s\n",
              "scenario", "primary", "truth", "flag", "tp", "fp", "fn",
              "precision", "recall", "fprate", "loc");
  for (const auto& s : study.scenarios) {
    std::printf("%-20s %-8.8s %5zu %5zu %5zu %5zu %5zu  %9.3f %9.3f %7.3f"
                "  %zu/%zu\n",
                s.name.c_str(), s.primary_kind.c_str(), s.truth_pairs,
                s.flagged_pairs, s.true_positives, s.false_positives,
                s.false_negatives, s.precision, s.recall, s.fp_rate,
                s.localizations_correct, s.localizations);
  }
  std::printf("per-kind recall (entries, pairs):\n");
  for (const auto& [name, ks] : study.kinds) {
    std::printf("  %-22s entries %2zu/%2zu (%.3f)  pairs %3zu/%3zu (%.3f)"
                "  localized %zu\n",
                name.c_str(), ks.detected, ks.entries, ks.entry_recall(),
                ks.flagged_pairs, ks.truth_pairs, ks.pair_recall(),
                ks.localized);
  }
  std::printf("aggregates: diurnal recall %.3f, maintenance fp rate %.3f\n",
              study.diurnal_recall, study.maintenance_fp_rate);

  if (!obs::write_text_file(out_path, study.to_json())) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("study: %s\n", out_path.c_str());
  if (!report_path.empty()) {
    const obs::RunReport report = obs::build_run_report("s2s_validate");
    if (obs::write_text_file(report_path, report.to_json())) {
      std::printf("run report: %s\n", report_path.c_str());
    }
  }

  if (gate) {
    const core::GateResult result = core::check_gates(study);
    for (const auto& v : result.violations) {
      std::fprintf(stderr, "GATE VIOLATION: %s\n", v.c_str());
    }
    if (!result.pass) return 1;
    std::printf("gates: pass\n");
  }
  return 0;
}
