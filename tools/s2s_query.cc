// s2s_query — one-shot client for a running s2sd (DESIGN.md section 11).
//
//   s2s_query [--host A] --port N <command> [args]
//
// Commands:
//   ping                          liveness echo
//   stats                         server + dataset counters
//   live                          live-ingest status: watermark epoch,
//                                 sealed bytes, lag, pairs tracked
//   pair-rtt SRC DST FAM          RTT quantiles (add --series for samples)
//   prevalence SRC DST FAM [CAP]  ranked AS-path prevalence
//   verdict SRC DST FAM           congestion verdict for the ping series
//   dualstack SRC DST             matched v4-v6 RTT deltas
//   figure N                      figure digest (1, 2, 5 or 10)
//   slice T0 T1                   zero-copy archive slice: blocks whose
//                                 time span intersects [T0, T1] seconds,
//                                 returned as a raw `.s2sb` image; prints
//                                 a JSON summary (record/block counts),
//                                 or add --out PATH to save the image
//   scrape [prom|json]            live metrics dump (default prom); the
//                                 Prometheus text is what a scraper
//                                 ingests, the JSON is what s2s_top reads
//
// --no-cache asks the server to skip the result-cache lookup (the
// response is still inserted). Prints the response JSON payload on
// stdout. Exit status: 0 = ok response, 1 = server error frame,
// 2 = usage, transport failure, or retries exhausted.
//
// Resilience flags (DESIGN.md section 12):
//   --timeout-ms N      per-attempt deadline          (default 10000)
//   --retries N         attempts after the first      (default 0)
//   --hedge             race a second connection when the primary is
//                       silent past --hedge-delay-ms  (default 150)
//   --burst N           first pipeline N copies of the request on one
//                       raw connection and report ok/busy counts on
//                       stderr (exercises server admission control),
//                       then run the real retried call
//   --trace             stamp the request with a trace context
//                       (kFlagTraceContext) so the server's span adopts
//                       this call's trace id
//   --report PATH       write a RunReport JSON (s2s.svc.retry.* counters)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "io/binrec.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "svc/client.h"
#include "svc/protocol.h"
#include "svc/retry_client.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: s2s_query [--host A] --port N [--no-cache] "
               "[--series]\n"
               "  [--timeout-ms N] [--retries N] [--hedge] "
               "[--hedge-delay-ms N]\n"
               "  [--burst N] [--trace] [--report PATH] [--out PATH] "
               "<command>\n"
               "  ping | stats | live | scrape [prom|json] | figure N |\n"
               "  dualstack SRC DST | pair-rtt SRC DST FAM |\n"
               "  prevalence SRC DST FAM [CAP] | verdict SRC DST FAM |\n"
               "  slice T0 T1\n");
  return 2;
}

/// Pipelines `count` copies of the frame on one throwaway connection and
/// counts the responses by kind; how a script provokes (and proves)
/// ordered busy shedding without a concurrent client fleet.
bool run_burst(const std::string& host, std::uint16_t port, int count,
               const std::string& frame, std::string& error) {
  s2s::svc::Client raw;
  if (!raw.connect(host, port, error)) return false;
  std::string wire;
  for (int i = 0; i < count; ++i) wire += frame;
  if (!raw.send_bytes(wire, error)) return false;
  int ok = 0, busy = 0, other = 0;
  for (int i = 0; i < count; ++i) {
    s2s::svc::MsgType type;
    std::string payload;
    if (!raw.read_frame(&type, &payload, error)) return false;
    if (type != s2s::svc::MsgType::kError) {
      ++ok;
    } else if (s2s::svc::parse_error_payload(payload).code == "busy") {
      ++busy;
    } else {
      ++other;
    }
  }
  std::fprintf(stderr, "s2s_query: burst %d: ok=%d busy=%d other=%d\n",
               count, ok, busy, other);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace s2s;

  std::string host = "127.0.0.1";
  int port = 0;
  bool no_cache = false;
  bool series = false;
  int burst = 0;
  std::string report_path;
  std::string out_path;
  svc::RetryPolicy policy;
  policy.timeout_ms = 10000;
  policy.max_retries = 0;
  std::vector<std::string> words;

  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (!std::strcmp(argv[i], "--host")) host = next();
    else if (!std::strcmp(argv[i], "--port")) port = std::atoi(next());
    else if (!std::strcmp(argv[i], "--no-cache")) no_cache = true;
    else if (!std::strcmp(argv[i], "--series")) series = true;
    else if (!std::strcmp(argv[i], "--timeout-ms")) {
      policy.timeout_ms = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--retries")) {
      policy.max_retries = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--hedge")) {
      policy.hedge = true;
    } else if (!std::strcmp(argv[i], "--hedge-delay-ms")) {
      policy.hedge_delay_ms = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--burst")) {
      burst = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--trace")) {
      policy.trace = true;
    } else if (!std::strcmp(argv[i], "--report")) {
      report_path = next();
    } else if (!std::strcmp(argv[i], "--out")) {
      out_path = next();
    } else {
      words.emplace_back(argv[i]);
    }
  }
  if (port <= 0 || port > 65535 || words.empty()) return usage();
  const std::string& command = words[0];

  auto pair_args = [&](std::size_t want, svc::PairQuery& q) {
    if (words.size() < 1 + want) return false;
    q.src = static_cast<std::uint32_t>(std::strtoul(words[1].c_str(),
                                                    nullptr, 10));
    q.dst = static_cast<std::uint32_t>(std::strtoul(words[2].c_str(),
                                                    nullptr, 10));
    if (want >= 3) {
      q.family = static_cast<std::uint8_t>(std::atoi(words[3].c_str()));
    }
    return true;
  };

  svc::MsgType type;
  std::string payload;
  if (command == "ping") {
    type = svc::MsgType::kPingEcho;
  } else if (command == "stats") {
    type = svc::MsgType::kServerStats;
  } else if (command == "live") {
    type = svc::MsgType::kLiveStatus;
  } else if (command == "pair-rtt") {
    svc::PairQuery q;
    if (!pair_args(3, q)) return usage();
    q.arg = series ? 1 : 0;
    type = svc::MsgType::kPairRtt;
    payload = svc::encode_pair_query(q);
  } else if (command == "prevalence") {
    svc::PairQuery q;
    if (!pair_args(3, q)) return usage();
    if (words.size() >= 5) {
      q.arg = static_cast<std::uint8_t>(std::atoi(words[4].c_str()));
    }
    type = svc::MsgType::kPathPrevalence;
    payload = svc::encode_pair_query(q);
  } else if (command == "verdict") {
    svc::PairQuery q;
    if (!pair_args(3, q)) return usage();
    type = svc::MsgType::kCongestionVerdict;
    payload = svc::encode_pair_query(q);
  } else if (command == "dualstack") {
    svc::PairQuery p;
    if (!pair_args(2, p)) return usage();
    svc::DualStackQuery q;
    q.src = p.src;
    q.dst = p.dst;
    type = svc::MsgType::kDualStackDelta;
    payload = svc::encode_dualstack_query(q);
  } else if (command == "figure") {
    if (words.size() < 2) return usage();
    svc::FigureQuery q;
    q.figure = static_cast<std::uint8_t>(std::atoi(words[1].c_str()));
    type = svc::MsgType::kFigureDigest;
    payload = svc::encode_figure_query(q);
  } else if (command == "slice") {
    if (words.size() < 3) return usage();
    svc::SliceQuery q;
    q.t0_s = std::strtoll(words[1].c_str(), nullptr, 10);
    q.t1_s = std::strtoll(words[2].c_str(), nullptr, 10);
    type = svc::MsgType::kArchiveSlice;
    payload = svc::encode_slice_query(q);
  } else if (command == "scrape") {
    svc::MetricsDumpQuery q;
    q.format = svc::MetricsDumpQuery::kPrometheus;
    if (words.size() >= 2 && words[1] == "json") {
      q.format = svc::MetricsDumpQuery::kJson;
    } else if (words.size() >= 2 && words[1] != "prom") {
      return usage();
    }
    type = svc::MsgType::kMetricsDump;
    payload = svc::encode_metrics_dump_query(q);
  } else {
    return usage();
  }

  obs::MetricsRegistry::global().reset();
  std::string error;
  const std::uint8_t flags = no_cache ? svc::kFlagNoCache : 0;

  if (burst > 0 &&
      !run_burst(host, static_cast<std::uint16_t>(port), burst,
                 svc::encode_frame(type, flags, payload), error)) {
    std::fprintf(stderr, "s2s_query: burst failed: %s\n", error.c_str());
    return 2;
  }

  svc::RetryingClient client(host, static_cast<std::uint16_t>(port), policy);
  svc::MsgType response_type;
  std::string response;
  const bool called =
      client.call(type, flags, payload, &response_type, &response, error);

  if (!report_path.empty()) {
    obs::RunReport report = obs::build_run_report("s2s_query");
    obs::write_text_file(report_path, report.to_json());
  }
  if (!called) {
    std::fprintf(stderr, "s2s_query: %s\n", error.c_str());
    return 2;
  }
  const auto& rs = client.stats();
  if (rs.retries > 0 || rs.hedges > 0) {
    std::fprintf(stderr,
                 "s2s_query: attempts=%llu retries=%llu failed=%llu "
                 "busy_rescheduled=%llu hedges=%llu\n",
                 static_cast<unsigned long long>(rs.attempts),
                 static_cast<unsigned long long>(rs.retries),
                 static_cast<unsigned long long>(rs.failed_attempts),
                 static_cast<unsigned long long>(rs.busy_rescheduled),
                 static_cast<unsigned long long>(rs.hedges));
  }
  if (command == "slice" && response_type != svc::MsgType::kError) {
    // The payload is a raw `.s2sb` image sliced zero-copy out of the
    // server's mmap'd archive; prove it parses and summarize it instead
    // of dumping binary to the terminal.
    io::BinRecordMmapReader reader(response.data(), response.size());
    if (!reader.ok()) {
      std::fprintf(stderr, "s2s_query: slice image unreadable: %s\n",
                   reader.error().c_str());
      return 2;
    }
    std::size_t traces = 0, pings = 0;
    reader.read_all([&](const auto&) { ++traces; },
                    [&](const auto&) { ++pings; });
    if (!out_path.empty() &&
        !obs::write_text_file(out_path, response)) {
      std::fprintf(stderr, "s2s_query: cannot write %s\n", out_path.c_str());
      return 2;
    }
    obs::json::Writer w;
    w.begin_object();
    w.key("type").value("archive_slice");
    w.key("bytes").value(static_cast<std::uint64_t>(response.size()));
    w.key("blocks").value(
        static_cast<std::uint64_t>(reader.blocks_read()));
    w.key("corrupt_blocks")
        .value(static_cast<std::uint64_t>(reader.corrupt_blocks()));
    w.key("trace_records").value(static_cast<std::uint64_t>(traces));
    w.key("ping_records").value(static_cast<std::uint64_t>(pings));
    if (!out_path.empty()) w.key("saved").value(out_path);
    w.end_object();
    std::printf("%s\n", w.str().c_str());
    return 0;
  }
  std::printf("%s\n", response.c_str());
  return response_type == svc::MsgType::kError ? 1 : 0;
}
