// s2s_query — one-shot client for a running s2sd (DESIGN.md section 11).
//
//   s2s_query [--host A] --port N <command> [args]
//
// Commands:
//   ping                          liveness echo
//   stats                         server + dataset counters
//   pair-rtt SRC DST FAM          RTT quantiles (add --series for samples)
//   prevalence SRC DST FAM [CAP]  ranked AS-path prevalence
//   verdict SRC DST FAM           congestion verdict for the ping series
//   dualstack SRC DST             matched v4-v6 RTT deltas
//   figure N                      figure digest (1, 2, 5 or 10)
//
// --no-cache asks the server to skip the result-cache lookup (the
// response is still inserted). Prints the response JSON payload on
// stdout. Exit status: 0 = ok response, 1 = server error frame,
// 2 = usage or transport failure.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "svc/client.h"
#include "svc/protocol.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: s2s_query [--host A] --port N [--no-cache] "
               "[--series] <command>\n"
               "  ping | stats | figure N | dualstack SRC DST |\n"
               "  pair-rtt SRC DST FAM | prevalence SRC DST FAM [CAP] |\n"
               "  verdict SRC DST FAM\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace s2s;

  std::string host = "127.0.0.1";
  int port = 0;
  bool no_cache = false;
  bool series = false;
  std::vector<std::string> words;

  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (!std::strcmp(argv[i], "--host")) host = next();
    else if (!std::strcmp(argv[i], "--port")) port = std::atoi(next());
    else if (!std::strcmp(argv[i], "--no-cache")) no_cache = true;
    else if (!std::strcmp(argv[i], "--series")) series = true;
    else words.emplace_back(argv[i]);
  }
  if (port <= 0 || port > 65535 || words.empty()) return usage();
  const std::string& command = words[0];

  auto pair_args = [&](std::size_t want, svc::PairQuery& q) {
    if (words.size() < 1 + want) return false;
    q.src = static_cast<std::uint32_t>(std::strtoul(words[1].c_str(),
                                                    nullptr, 10));
    q.dst = static_cast<std::uint32_t>(std::strtoul(words[2].c_str(),
                                                    nullptr, 10));
    if (want >= 3) {
      q.family = static_cast<std::uint8_t>(std::atoi(words[3].c_str()));
    }
    return true;
  };

  svc::MsgType type;
  std::string payload;
  if (command == "ping") {
    type = svc::MsgType::kPingEcho;
  } else if (command == "stats") {
    type = svc::MsgType::kServerStats;
  } else if (command == "pair-rtt") {
    svc::PairQuery q;
    if (!pair_args(3, q)) return usage();
    q.arg = series ? 1 : 0;
    type = svc::MsgType::kPairRtt;
    payload = svc::encode_pair_query(q);
  } else if (command == "prevalence") {
    svc::PairQuery q;
    if (!pair_args(3, q)) return usage();
    if (words.size() >= 5) {
      q.arg = static_cast<std::uint8_t>(std::atoi(words[4].c_str()));
    }
    type = svc::MsgType::kPathPrevalence;
    payload = svc::encode_pair_query(q);
  } else if (command == "verdict") {
    svc::PairQuery q;
    if (!pair_args(3, q)) return usage();
    type = svc::MsgType::kCongestionVerdict;
    payload = svc::encode_pair_query(q);
  } else if (command == "dualstack") {
    svc::PairQuery p;
    if (!pair_args(2, p)) return usage();
    svc::DualStackQuery q;
    q.src = p.src;
    q.dst = p.dst;
    type = svc::MsgType::kDualStackDelta;
    payload = svc::encode_dualstack_query(q);
  } else if (command == "figure") {
    if (words.size() < 2) return usage();
    svc::FigureQuery q;
    q.figure = static_cast<std::uint8_t>(std::atoi(words[1].c_str()));
    type = svc::MsgType::kFigureDigest;
    payload = svc::encode_figure_query(q);
  } else {
    return usage();
  }

  svc::Client client;
  std::string error;
  if (!client.connect(host, static_cast<std::uint16_t>(port), error)) {
    std::fprintf(stderr, "s2s_query: %s\n", error.c_str());
    return 2;
  }
  svc::MsgType response_type;
  std::string response;
  const std::uint8_t flags = no_cache ? svc::kFlagNoCache : 0;
  if (!client.call(type, flags, payload, &response_type, &response, error)) {
    std::fprintf(stderr, "s2s_query: %s\n", error.c_str());
    return 2;
  }
  std::printf("%s\n", response.c_str());
  return response_type == svc::MsgType::kError ? 1 : 0;
}
