// s2s_top — a refreshing terminal dashboard for a running s2sd
// (DESIGN.md section 13).
//
//   s2s_top --port N [--host A] [--interval-ms N] [--iterations N]
//           [--no-clear]
//
// Polls the kMetricsDump request (JSON format) on the given server and
// renders, once per interval:
//
//   * request and byte rates over the last interval (counter deltas),
//   * per-type windowed p50/p99 latency (the server's last-N-seconds
//     view, not lifetime averages),
//   * SLO good-ratio per type,
//   * cache hit ratio, shed / busy / protocol-error counters with
//     per-interval deltas.
//
// --iterations N exits after N polls (CI smoke uses 3); the default is
// to run until interrupted. --no-clear appends frames instead of
// redrawing in place, which keeps output pipeable. Exit status: 0 on a
// clean run, 2 when the server cannot be polled.
#include <time.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <map>
#include <string>

#include "obs/json.h"
#include "svc/client.h"
#include "svc/protocol.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: s2s_top --port N [--host A] [--interval-ms N]\n"
               "               [--iterations N] [--no-clear]\n");
  return 2;
}

void sleep_ms(int ms) {
  if (ms <= 0) return;
  timespec ts;
  ts.tv_sec = ms / 1000;
  ts.tv_nsec = static_cast<long>(ms % 1000) * 1000000L;
  ::nanosleep(&ts, nullptr);
}

struct Sample {
  double uptime_s = 0.0;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  /// type -> {p50, p99, total} from the windowed view.
  struct Window {
    double p50 = 0.0;
    double p99 = 0.0;
    std::uint64_t total = 0;
  };
  std::map<std::string, Window> windowed;
  /// type -> good ratio.
  std::map<std::string, double> slo;
};

/// One kMetricsDump(json) round trip; false on any transport/parse error.
bool poll_server(const std::string& host, std::uint16_t port, Sample& out,
                 std::string& error) {
  s2s::svc::Client client;
  if (!client.connect(host, port, error, 2000)) return false;
  s2s::svc::MetricsDumpQuery q;
  q.format = s2s::svc::MetricsDumpQuery::kJson;
  const std::string frame =
      s2s::svc::encode_frame(s2s::svc::MsgType::kMetricsDump, 0,
                             s2s::svc::encode_metrics_dump_query(q));
  if (!client.send_bytes(frame, error)) return false;
  s2s::svc::MsgType type;
  std::string payload;
  if (!client.read_frame(&type, &payload, error)) return false;
  if (type != s2s::svc::MsgType::kOk) {
    error = "server error: " + payload;
    return false;
  }
  const auto root = s2s::obs::json::parse(payload);
  if (!root || !root->is_object()) {
    error = "unparseable metrics dump";
    return false;
  }
  if (const auto* v = root->find("uptime_s"); v && v->is_number()) {
    out.uptime_s = v->number;
  }
  if (const auto* obj = root->find("counters"); obj && obj->is_object()) {
    for (const auto& [name, v] : obj->object) {
      if (v.is_number()) out.counters[name] = v.as_u64();
    }
  }
  if (const auto* obj = root->find("gauges"); obj && obj->is_object()) {
    for (const auto& [name, v] : obj->object) {
      if (v.is_number()) out.gauges[name] = v.number;
    }
  }
  if (const auto* obj = root->find("windowed"); obj && obj->is_object()) {
    for (const auto& [name, v] : obj->object) {
      Sample::Window w;
      if (const auto* p = v.find("p50"); p && p->is_number()) w.p50 = p->number;
      if (const auto* p = v.find("p99"); p && p->is_number()) w.p99 = p->number;
      if (const auto* p = v.find("total"); p && p->is_number()) {
        w.total = p->as_u64();
      }
      // Strip the metric prefix so rows read as request types.
      const std::string prefix = "s2s.svc.windowed_us.";
      out.windowed[name.rfind(prefix, 0) == 0 ? name.substr(prefix.size())
                                              : name] = w;
    }
  }
  if (const auto* obj = root->find("slo"); obj && obj->is_object()) {
    for (const auto& [name, v] : obj->object) {
      const auto* ratio = v.find("good_ratio");
      if (ratio == nullptr || !ratio->is_number()) continue;
      const std::string prefix = "s2s.svc.slo.";
      out.slo[name.rfind(prefix, 0) == 0 ? name.substr(prefix.size()) : name] =
          ratio->number;
    }
  }
  return true;
}

std::uint64_t counter(const Sample& s, const char* name) {
  const auto it = s.counters.find(name);
  return it == s.counters.end() ? 0 : it->second;
}

std::uint64_t delta(const Sample& now, const Sample& prev, const char* name) {
  const std::uint64_t a = counter(now, name), b = counter(prev, name);
  return a >= b ? a - b : 0;
}

void render(const Sample& now, const Sample& prev, bool have_prev,
            double interval_s, const std::string& host, std::uint16_t port) {
  const double rate_div = interval_s > 0 ? interval_s : 1.0;
  std::printf("s2s_top — %s:%u  up %.1fs\n", host.c_str(),
              static_cast<unsigned>(port), now.uptime_s);

  const std::uint64_t req = counter(now, "s2s.svc.requests");
  const std::uint64_t dreq = have_prev ? delta(now, prev, "s2s.svc.requests")
                                       : 0;
  std::printf("requests %" PRIu64 "  (%.1f req/s)  rx %" PRIu64
              "B/s  tx %" PRIu64 "B/s\n",
              req, have_prev ? static_cast<double>(dreq) / rate_div : 0.0,
              have_prev ? static_cast<std::uint64_t>(
                              static_cast<double>(delta(
                                  now, prev, "s2s.svc.bytes_rx")) / rate_div)
                        : 0,
              have_prev ? static_cast<std::uint64_t>(
                              static_cast<double>(delta(
                                  now, prev, "s2s.svc.bytes_tx")) / rate_div)
                        : 0);

  const std::uint64_t hits = counter(now, "s2s.svc.cache_hits");
  const std::uint64_t misses = counter(now, "s2s.svc.cache_misses");
  const double hit_ratio =
      hits + misses > 0
          ? static_cast<double>(hits) / static_cast<double>(hits + misses)
          : 0.0;
  std::printf("cache hit %.1f%% (%" PRIu64 "/%" PRIu64 ")  shed %" PRIu64
              " (+%" PRIu64 ")  busy %" PRIu64 "  proto_err %" PRIu64 "\n",
              100.0 * hit_ratio, hits, hits + misses,
              counter(now, "s2s.svc.shed.cost") +
                  counter(now, "s2s.svc.shed.inflight") +
                  counter(now, "s2s.svc.shed.client"),
              have_prev ? delta(now, prev, "s2s.svc.shed.cost") +
                              delta(now, prev, "s2s.svc.shed.inflight") +
                              delta(now, prev, "s2s.svc.shed.client")
                        : 0,
              counter(now, "s2s.svc.busy_rejected"),
              counter(now, "s2s.svc.protocol_errors"));

  // Live-ingest progress: the s2s.live.* gauges exist only on a server
  // that loaded an open shard, so their presence is the feature gate.
  if (const auto wm = now.gauges.find("s2s.live.watermark_epoch");
      wm != now.gauges.end()) {
    const auto gauge = [&](const char* name) {
      const auto it = now.gauges.find(name);
      return it == now.gauges.end() ? 0.0 : it->second;
    };
    const std::uint64_t pickups = counter(now, "s2s.live.delta_pickups");
    const std::uint64_t dpick =
        have_prev ? delta(now, prev, "s2s.live.delta_pickups") : 0;
    std::printf("live ingest: watermark epoch %.0f  sealed %.0fB  "
                "pairs %.0f  pickups %" PRIu64 " (+%" PRIu64 ")\n",
                wm->second, gauge("s2s.live.sealed_bytes"),
                gauge("s2s.live.pairs"), pickups, dpick);
  }

  std::printf("%-20s %10s %10s %10s %8s\n", "type", "win_p50_us", "win_p99_us",
              "win_count", "slo");
  for (const auto& [type, w] : now.windowed) {
    const auto slo_it = now.slo.find(type);
    char slo_buf[16];
    if (slo_it != now.slo.end()) {
      std::snprintf(slo_buf, sizeof slo_buf, "%.1f%%",
                    100.0 * slo_it->second);
    } else {
      std::snprintf(slo_buf, sizeof slo_buf, "-");
    }
    std::printf("%-20s %10.0f %10.0f %10" PRIu64 " %8s\n", type.c_str(),
                w.p50, w.p99, w.total, slo_buf);
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  int interval_ms = 1000;
  long iterations = -1;  // run until interrupted
  bool clear = true;

  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (!std::strcmp(argv[i], "--host")) host = next();
    else if (!std::strcmp(argv[i], "--port")) port = std::atoi(next());
    else if (!std::strcmp(argv[i], "--interval-ms")) {
      interval_ms = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--iterations")) {
      iterations = std::atol(next());
    } else if (!std::strcmp(argv[i], "--no-clear")) {
      clear = false;
    } else {
      return usage();
    }
  }
  if (port <= 0 || port > 65535) return usage();

  Sample prev;
  bool have_prev = false;
  for (long n = 0; iterations < 0 || n < iterations; ++n) {
    if (n > 0) sleep_ms(interval_ms);
    Sample now;
    std::string error;
    if (!poll_server(host, static_cast<std::uint16_t>(port), now, error)) {
      std::fprintf(stderr, "s2s_top: %s\n", error.c_str());
      return 2;
    }
    if (clear) std::printf("\x1b[2J\x1b[H");
    render(now, prev, have_prev, static_cast<double>(interval_ms) / 1000.0,
           host, static_cast<std::uint16_t>(port));
    if (!clear) std::printf("\n");
    prev = std::move(now);
    have_prev = true;
  }
  return 0;
}
