#!/usr/bin/env python3
"""Validate a Prometheus text exposition scraped from s2sd.

Usage: check_metrics_text.py METRICS.txt [REQUIRED_METRIC ...]

Checks the format contract of `s2s_query scrape` / the kMetricsDump
Prometheus renderer (DESIGN.md section 13):

  * every line is a comment, blank, or `name[{labels}] value`;
  * every sample's metric family has a preceding `# TYPE` declaration
    (allowing the conventional `_total` / `_bucket` / `_sum` / `_count`
    suffixes and the windowed/SLO gauge suffixes);
  * metric names match [a-zA-Z_:][a-zA-Z0-9_:]* — no unsanitized dots;
  * histogram bucket series are cumulative, end in an `+Inf` bucket, and
    the `+Inf` count equals the family's `_count` sample.

Any extra arguments are metric names that must be present (the CI smoke
requires s2s_svc_requests_total). Exits non-zero on any violation.
"""
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[0-9eE+.inf-]+)$")
TYPE_RE = re.compile(
    r"^# TYPE (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*) "
    r"(?P<kind>counter|gauge|histogram)$")
# Suffixes a sample may carry on top of its declared family name.
FAMILY_SUFFIXES = ("_bucket", "_sum", "_count",
                   "_p50", "_p99", "_window_s",
                   "_threshold_us", "_good_ratio")


def fail(message):
    print(f"check_metrics_text: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def family_of(name, declared):
    """The declared family a sample name belongs to, or None."""
    if name in declared:
        return name
    for suffix in FAMILY_SUFFIXES:
        if name.endswith(suffix) and name[: -len(suffix)] in declared:
            return name[: -len(suffix)]
    return None


def main():
    if len(sys.argv) < 2:
        fail("usage: check_metrics_text.py METRICS.txt [REQUIRED ...]")
    path = sys.argv[1]
    required = set(sys.argv[2:])
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        fail(f"cannot read {path}: {e}")

    declared = {}   # family -> kind
    samples = {}    # sample name -> last value
    buckets = {}    # family -> list of (le, count) in file order
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            m = TYPE_RE.match(line)
            if line.startswith("# TYPE") and not m:
                fail(f"line {lineno}: malformed TYPE declaration: {line!r}")
            if m:
                if m["name"] in declared:
                    fail(f"line {lineno}: duplicate TYPE for {m['name']}")
                declared[m["name"]] = m["kind"]
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            fail(f"line {lineno}: not a sample line: {line!r}")
        name = m["name"]
        if not NAME_RE.match(name):
            fail(f"line {lineno}: illegal metric name {name!r}")
        family = family_of(name, declared)
        if family is None:
            fail(f"line {lineno}: sample {name!r} has no TYPE declaration")
        try:
            value = float(m["value"])
        except ValueError:
            fail(f"line {lineno}: unparseable value in {line!r}")
        samples[name] = value
        if name.endswith("_bucket"):
            if declared[family] != "histogram":
                fail(f"line {lineno}: _bucket sample on non-histogram "
                     f"{family!r}")
            labels = m["labels"] or ""
            lm = re.match(r'^le="([^"]+)"$', labels)
            if not lm:
                fail(f"line {lineno}: bucket without le label: {line!r}")
            buckets.setdefault(family, []).append((lm.group(1), value))

    for family, series in buckets.items():
        if series[-1][0] != "+Inf":
            fail(f"histogram {family!r}: bucket series does not end in +Inf")
        counts = [count for _, count in series]
        if counts != sorted(counts):
            fail(f"histogram {family!r}: bucket counts are not cumulative")
        count_sample = samples.get(family + "_count")
        if count_sample is None:
            fail(f"histogram {family!r}: missing _count sample")
        if counts[-1] != count_sample:
            fail(f"histogram {family!r}: +Inf {counts[-1]} != _count "
                 f"{count_sample}")
        if family + "_sum" not in samples:
            fail(f"histogram {family!r}: missing _sum sample")

    for name in sorted(required):
        if name not in samples:
            fail(f"required metric {name!r} not found")

    histograms = sum(1 for kind in declared.values() if kind == "histogram")
    print(f"check_metrics_text: OK: {len(samples)} samples, "
          f"{len(declared)} families ({histograms} histograms)")


if __name__ == "__main__":
    main()
