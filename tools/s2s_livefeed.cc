// s2s_livefeed — stream a ping campaign into an OPEN `.s2sb` shard that
// a concurrently running s2sd serves (DESIGN.md section 16).
//
//   s2s_livefeed --out <shard.s2sb> [options]
//
// Options:
//   --days N            campaign length in days       (default 7)
//   --pairs N           dual-stack mesh pair cap      (default 48)
//   --prefill N         epochs written flat-out before pacing starts;
//                       the line "s2s_livefeed: prefilled ..." marks the
//                       moment a daemon can be pointed at the shard
//   --epoch-sleep-ms N  wall-clock pause after each paced epoch seal
//                       (default 0 = as fast as possible)
//   --campaign-seed N   ping campaign seed            (default 31, the
//                       fixture writer's)
//   --block-records N   open-shard block size         (default 1024)
//   --no-scan           skip the pre-scan that reports which pair ends
//                       up with a consistent-congestion verdict
//   --resume            resume an interrupted shard instead of truncating
// Deployment provenance (must match the serving daemon's flags):
//   --seed N --servers N --tier1 N --transit N --stub N
//
// The feeder first (unless --no-scan) folds the whole campaign through
// an IncrementalState in memory and prints the first pair whose final
// verdict is consistent congestion — the pair a smoke test should poll.
// It then replays the identical record stream (same seed, same world)
// into the open shard, sealing one block per epoch: each seal fsyncs the
// data and atomically advances the watermark sidecar, so the serving
// daemon's delta pickup sees epoch-granular, never-torn growth. finish()
// appends the footer index; the sidecar is left in place so the daemon
// observes the final watermark.
#include <time.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "live/incremental.h"
#include "live/open_shard.h"
#include "probe/campaign.h"
#include "simnet/network.h"
#include "svc/dataset.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: s2s_livefeed --out <shard.s2sb> [--days N] "
               "[--pairs N]\n"
               "  [--prefill N] [--epoch-sleep-ms N] [--campaign-seed N]\n"
               "  [--block-records N] [--no-scan] [--resume] [--seed N]\n"
               "  [--servers N] [--tier1 N] [--transit N] [--stub N]\n");
  return 2;
}

void sleep_ms(int ms) {
  if (ms <= 0) return;
  timespec ts;
  ts.tv_sec = ms / 1000;
  ts.tv_nsec = static_cast<long>(ms % 1000) * 1000000L;
  ::nanosleep(&ts, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace s2s;

  std::string out;
  double days = 7.0;
  std::size_t max_pairs = 48;
  std::size_t prefill = 0;
  int epoch_sleep_ms = 0;
  std::uint64_t campaign_seed = 31;
  std::size_t block_records = 1024;
  bool scan = true;
  bool resume = false;
  svc::DatasetConfig dataset_cfg;

  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (!std::strcmp(argv[i], "--out")) out = next();
    else if (!std::strcmp(argv[i], "--days")) days = std::atof(next());
    else if (!std::strcmp(argv[i], "--pairs")) {
      max_pairs = static_cast<std::size_t>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--prefill")) {
      prefill = static_cast<std::size_t>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--epoch-sleep-ms")) {
      epoch_sleep_ms = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--campaign-seed")) {
      campaign_seed = std::strtoull(next(), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--block-records")) {
      block_records = static_cast<std::size_t>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--no-scan")) {
      scan = false;
    } else if (!std::strcmp(argv[i], "--resume")) {
      resume = true;
    } else if (!std::strcmp(argv[i], "--seed")) {
      dataset_cfg.topo_seed = std::strtoull(next(), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--servers")) {
      dataset_cfg.server_count = static_cast<std::size_t>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--tier1")) {
      dataset_cfg.tier1_count = static_cast<std::size_t>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--transit")) {
      dataset_cfg.transit_count = static_cast<std::size_t>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--stub")) {
      dataset_cfg.stub_count = static_cast<std::size_t>(std::atoi(next()));
    } else {
      return usage();
    }
  }
  if (out.empty()) return usage();

  simnet::Network net(svc::dataset_net_config(dataset_cfg));
  const auto pairs = svc::fixture_pairs(net.topo(), max_pairs);
  if (pairs.empty()) {
    std::fprintf(stderr,
                 "s2s_livefeed: topology has no dual-stack server pairs\n");
    return 1;
  }

  probe::PingCampaignConfig ping_cfg;
  ping_cfg.start_day = dataset_cfg.ping_start_day;
  ping_cfg.days = days;
  ping_cfg.interval_s = dataset_cfg.ping_interval_s;
  ping_cfg.seed = campaign_seed;
  const std::size_t total_epochs =
      static_cast<std::size_t>(days * 86400.0 /
                               static_cast<double>(ping_cfg.interval_s));

  if (scan) {
    // Dry-run the campaign through the same incremental fold the daemon
    // uses and report the pair a smoke test should watch. Same seed =>
    // the streamed shard below carries the identical records.
    live::IncrementalConfig inc;
    inc.start_day = dataset_cfg.ping_start_day;
    inc.interval_s = dataset_cfg.ping_interval_s;
    inc.detect = dataset_cfg.detect;
    inc.min_fraction = dataset_cfg.detect_min_fraction;
    live::IncrementalState state(inc);
    probe::PingCampaign dry(net, ping_cfg, pairs);
    dry.run([&](const probe::PingRecord& r) { state.add(r); });
    state.advance_watermark(static_cast<std::int64_t>(total_epochs) - 1);
    bool found = false;
    state.for_each([&](std::uint32_t src, std::uint32_t dst,
                       std::uint8_t family,
                       const live::IncrementalState::Verdict& v) {
      if (found || !v.consistent_congestion()) return;
      found = true;
      std::printf("s2s_livefeed: congested pair: src=%u dst=%u family=%u\n",
                  src, dst, static_cast<unsigned>(family));
    });
    if (!found) {
      std::printf("s2s_livefeed: congested pair: none\n");
    }
    std::fflush(stdout);
  }

  std::unique_ptr<live::OpenShardWriter> writer;
  std::string error;
  if (resume) {
    writer = live::OpenShardWriter::resume(out, {block_records}, error);
    if (!writer) {
      std::fprintf(stderr, "s2s_livefeed: cannot resume %s: %s\n",
                   out.c_str(), error.c_str());
      return 1;
    }
  } else {
    writer =
        std::make_unique<live::OpenShardWriter>(out,
                                                live::OpenShardConfig{
                                                    block_records});
    if (!writer->ok()) {
      std::fprintf(stderr, "s2s_livefeed: cannot open %s: %s\n", out.c_str(),
                   writer->error().c_str());
      return 1;
    }
  }

  if (prefill == 0) {
    std::printf("s2s_livefeed: prefilled epochs=0\n");
    std::fflush(stdout);
  }

  bool seal_failed = false;
  ping_cfg.on_epoch = [&](std::size_t epoch) {
    std::string seal_error;
    if (!writer->seal(static_cast<std::int64_t>(epoch), seal_error)) {
      if (!seal_failed) {
        std::fprintf(stderr, "s2s_livefeed: seal failed at epoch %zu: %s\n",
                     epoch, seal_error.c_str());
      }
      seal_failed = true;
      return;
    }
    if (epoch + 1 == prefill) {
      std::printf("s2s_livefeed: prefilled epochs=%zu\n", prefill);
      std::fflush(stdout);
    }
    if (epoch + 1 > prefill) sleep_ms(epoch_sleep_ms);
  };
  probe::PingCampaign feed(net, ping_cfg, pairs);
  const auto result =
      feed.run([&](const probe::PingRecord& r) { writer->write(r); });
  if (seal_failed) return 1;
  if (result.aborted) {
    std::fprintf(stderr, "s2s_livefeed: campaign aborted: %s\n",
                 result.error.c_str());
    return 1;
  }
  // The marker must appear even when the prefill covers the whole run.
  if (prefill > 0 && prefill > total_epochs) {
    std::printf("s2s_livefeed: prefilled epochs=%zu\n", total_epochs);
    std::fflush(stdout);
  }
  if (!writer->finish(error)) {
    std::fprintf(stderr, "s2s_livefeed: finish failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("s2s_livefeed: done epochs=%zu records=%llu sealed_bytes=%llu "
              "watermark_epoch=%lld\n",
              result.epochs_completed,
              static_cast<unsigned long long>(writer->records()),
              static_cast<unsigned long long>(writer->watermark().sealed_bytes),
              static_cast<long long>(writer->watermark().epoch));
  return 0;
}
