#!/usr/bin/env python3
"""Validate a s2s RunReport JSON document (DESIGN.md section 8).

Usage: check_run_report.py REPORT.json [TRACE.json]

Exits non-zero when the report is missing, fails to parse, carries an
unknown schema_version, or violates the structural invariants the
pipeline promises (metric sections present and typed, histogram count
arrays sized bounds+1, span stats well-formed). When a trace file is
given, it must be loadable chrome://tracing JSON: a traceEvents array of
complete ("ph": "X") events with numeric ts/dur.
"""
import json
import sys

EXPECTED_SCHEMA_VERSION = 2


def fail(message):
    print(f"check_run_report: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_histogram(name, hist):
    bounds = hist.get("bounds")
    counts = hist.get("counts")
    if not isinstance(bounds, list) or not isinstance(counts, list):
        fail(f"histogram {name!r} missing bounds/counts arrays")
    if len(counts) != len(bounds) + 1:
        fail(f"histogram {name!r}: {len(counts)} counts for "
             f"{len(bounds)} bounds (want bounds+1)")
    if sum(counts) != hist.get("total"):
        fail(f"histogram {name!r}: counts sum != total")


def check_report(path):
    try:
        with open(path, encoding="utf-8") as f:
            report = json.load(f)
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")

    version = report.get("schema_version")
    if version != EXPECTED_SCHEMA_VERSION:
        fail(f"schema_version {version!r} != expected {EXPECTED_SCHEMA_VERSION}")
    if not isinstance(report.get("tool"), str) or not report["tool"]:
        fail("missing or empty 'tool'")
    if not isinstance(report.get("wall_ms"), (int, float)):
        fail("missing numeric 'wall_ms'")

    metrics = report.get("metrics")
    if not isinstance(metrics, dict):
        fail("missing 'metrics' object")
    for section, value_type in [("counters", int), ("gauges", (int, float))]:
        entries = metrics.get(section)
        if not isinstance(entries, dict):
            fail(f"missing 'metrics.{section}' object")
        for name, value in entries.items():
            if not isinstance(value, value_type):
                fail(f"metrics.{section}[{name!r}] is not {value_type}")
    histograms = metrics.get("histograms")
    if not isinstance(histograms, dict):
        fail("missing 'metrics.histograms' object")
    for name, hist in histograms.items():
        check_histogram(name, hist)
        if not isinstance(hist.get("overflow"), int):
            fail(f"histogram {name!r} missing integer 'overflow' (schema v2)")
        if hist["overflow"] != hist["counts"][-1]:
            fail(f"histogram {name!r}: overflow != last bucket count")

    # Schema v2: optional windowed / SLO sections from the serving path.
    windowed = report.get("windowed", {})
    if not isinstance(windowed, dict):
        fail("'windowed' is not an object")
    for name, win in windowed.items():
        if not isinstance(win.get("window_s"), (int, float)):
            fail(f"windowed {name!r} missing numeric 'window_s'")
        check_histogram(name, win)
    slo = report.get("slo", {})
    if not isinstance(slo, dict):
        fail("'slo' is not an object")
    for name, stat in slo.items():
        for field in ("threshold_us", "good", "total", "good_ratio"):
            if not isinstance(stat.get(field), (int, float)):
                fail(f"slo {name!r} missing numeric {field!r}")
        if stat["good"] > stat["total"]:
            fail(f"slo {name!r}: good {stat['good']} > total {stat['total']}")

    spans = report.get("spans")
    if not isinstance(spans, dict):
        fail("missing 'spans' object")
    for path_key, stat in spans.items():
        for field in ("depth", "count", "total_ms", "self_ms"):
            if not isinstance(stat.get(field), (int, float)):
                fail(f"span {path_key!r} missing numeric {field!r}")
        if stat["depth"] != path_key.count("/"):
            fail(f"span {path_key!r}: depth {stat['depth']} != path depth")

    if not isinstance(report.get("data_quality"), dict):
        fail("missing 'data_quality' object")

    metric_count = sum(len(metrics[s]) for s in ("counters", "gauges",
                                                 "histograms"))
    nested = sum(1 for p in spans if "/" in p)
    print(f"check_run_report: OK: tool={report['tool']} "
          f"metrics={metric_count} spans={len(spans)} (nested={nested}) "
          f"windowed={len(windowed)} slo={len(slo)}")
    return metric_count, nested


def check_trace(path):
    try:
        with open(path, encoding="utf-8") as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"trace {path}: {e}")
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("trace has no traceEvents array")
    for event in events:
        if event.get("ph") != "X":
            fail(f"trace event {event.get('name')!r} is not a complete event")
        for field in ("ts", "dur"):
            if not isinstance(event.get(field), (int, float)):
                fail(f"trace event {event.get('name')!r} missing {field!r}")
        if not isinstance(event.get("name"), str):
            fail("trace event missing name")
    print(f"check_run_report: OK: trace has {len(events)} events")


def main():
    if len(sys.argv) < 2 or len(sys.argv) > 3:
        fail("usage: check_run_report.py REPORT.json [TRACE.json]")
    check_report(sys.argv[1])
    if len(sys.argv) == 3:
        check_trace(sys.argv[2])


if __name__ == "__main__":
    main()
