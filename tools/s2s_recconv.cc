// s2s_recconv — convert measurement record archives between the text TSV
// format (records_io) and the `.s2sb` binary columnar format (binrec).
//
//   s2s_recconv to-binary   <in.tsv>  <out.s2sb> [--block-records N]
//   s2s_recconv to-text     <in.s2sb> <out.tsv>
//   s2s_recconv info        <in>           # either format: counts + stats
//   s2s_recconv repair      <in.s2sb>      # torn-tail repair, in place
//
// `info` is append-aware: an archive with a watermark sidecar (an open
// shard being written live, DESIGN.md section 16) is judged against its
// sealed watermark, not EOF — the unsealed tail past the watermark is
// reported, never counted as damage. Damage *inside* the watermark (a
// torn or corrupt sealed block, or a sidecar that fails its CRC) exits
// 1: crash recovery cannot reach the watermark from such a shard.
//
// Conversion is lossless in both directions: the binary RTT column is
// fixed-point at exactly the text format's %.3f precision, so
// text -> binary -> text is byte-identical for well-formed archives (the
// round-trip smoke test in CI asserts this). Malformed text lines and
// corrupt binary blocks are counted and skipped, mirroring the readers'
// never-fatal contract. The conversion modes exit nonzero only when the
// input cannot be opened or is not a record archive at all; `info` is an
// integrity check, so it additionally fails when the archive is torn
// (truncated mid-block), the footer index is damaged, or any block was
// corrupt — partial stats are still printed, but not as success.
//
// `repair` truncates a damaged archive to its longest valid block prefix,
// rebuilds the footer, and commits atomically (tmp + fsync + rename); an
// already-intact file is left untouched. `to-binary` uses the same atomic
// commit, so an interrupted conversion never leaves a torn output
// (DESIGN.md section 12).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "io/binrec.h"
#include "io/mmap_file.h"
#include "io/records_io.h"
#include "live/watermark.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: s2s_recconv to-binary <in.tsv> <out.s2sb> "
               "[--block-records N]\n"
               "       s2s_recconv to-text   <in.s2sb> <out.tsv>\n"
               "       s2s_recconv info      <in>\n"
               "       s2s_recconv repair    <in.s2sb>\n");
  return 2;
}

void print_result(const char* path, const s2s::io::IngestResult& r) {
  std::printf("%s: format=%s records=%zu", path, r.binary ? "s2sb" : "text",
              r.records);
  if (r.binary) {
    std::printf(" blocks_read=%zu corrupt_blocks=%zu records_rejected=%zu",
                r.blocks_read, r.corrupt_blocks, r.records_rejected);
  } else {
    std::printf(" malformed_lines=%zu", r.malformed_lines);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace s2s;
  if (argc < 3) return usage();
  const std::string mode = argv[1];
  const std::string in_path = argv[2];

  if (mode == "info") {
    live::Watermark wm;
    const auto wm_status = live::read_watermark_file(in_path, wm);
    if (wm_status == live::WatermarkStatus::kInvalid) {
      std::fprintf(stderr,
                   "s2s_recconv: %s: watermark sidecar failed validation "
                   "(%s); the shard's durable prefix is unknowable\n",
                   in_path.c_str(),
                   live::watermark_path(in_path).c_str());
      return 1;
    }
    if (wm_status == live::WatermarkStatus::kValid) {
      // Open shard: judge the sealed prefix only. Bytes past the
      // watermark are the writer's in-flight tail, not damage.
      io::MmapFile file;
      if (!file.open(in_path)) {
        std::fprintf(stderr, "s2s_recconv: %s: %s\n", in_path.c_str(),
                     file.error().c_str());
        return 1;
      }
      if (file.size() < wm.sealed_bytes) {
        std::fprintf(stderr,
                     "s2s_recconv: %s: file is shorter than its sealed "
                     "watermark (%zu < %llu bytes); recovery cannot reach "
                     "the watermark\n",
                     in_path.c_str(), file.size(),
                     static_cast<unsigned long long>(wm.sealed_bytes));
        return 1;
      }
      const auto sealed = static_cast<std::size_t>(wm.sealed_bytes);
      std::size_t traces = 0, pings = 0;
      io::BinRecordMmapReader reader(file.data(), sealed);
      if (!reader.ok()) {
        std::fprintf(stderr, "s2s_recconv: %s: %s\n", in_path.c_str(),
                     reader.error().c_str());
        return 1;
      }
      reader.read_all([&](const probe::TracerouteRecord&) { ++traces; },
                      [&](const probe::PingRecord&) { ++pings; });
      std::printf("%s: format=s2sb-open records=%zu blocks_read=%zu "
                  "corrupt_blocks=%zu records_rejected=%zu\n",
                  in_path.c_str(), reader.records_read(),
                  reader.blocks_read(), reader.corrupt_blocks(),
                  reader.counters().records_rejected);
      std::printf("%s: traceroutes=%zu pings=%zu\n", in_path.c_str(), traces,
                  pings);
      std::printf("%s: watermark epoch=%lld sealed_bytes=%llu blocks=%llu "
                  "records=%llu unsealed_tail_bytes=%zu\n",
                  in_path.c_str(), static_cast<long long>(wm.epoch),
                  static_cast<unsigned long long>(wm.sealed_bytes),
                  static_cast<unsigned long long>(wm.blocks),
                  static_cast<unsigned long long>(wm.records),
                  file.size() - sealed);
      if (reader.counters().truncated || reader.corrupt_blocks() > 0) {
        std::fprintf(stderr,
                     "s2s_recconv: %s: damage inside the sealed watermark; "
                     "recovery cannot reach the watermark\n",
                     in_path.c_str());
        return 1;
      }
      return 0;
    }
    std::size_t traces = 0, pings = 0;
    const auto result = io::ingest_record_file(
        in_path, [&](const probe::TracerouteRecord&) { ++traces; },
        [&](const probe::PingRecord&) { ++pings; });
    if (!result.ok) {
      std::fprintf(stderr, "s2s_recconv: %s\n", result.error.c_str());
      return 1;
    }
    print_result(in_path.c_str(), result);
    std::printf("%s: traceroutes=%zu pings=%zu\n", in_path.c_str(), traces,
                pings);
    if (result.binary) {
      bool damaged = false;
      if (result.truncated) {
        damaged = true;
        std::fprintf(stderr,
                     "s2s_recconv: %s: archive truncated mid-block; counts "
                     "above cover only the readable prefix\n",
                     in_path.c_str());
      }
      if (result.footer == io::FooterStatus::kInvalid) {
        damaged = true;
        std::fprintf(stderr,
                     "s2s_recconv: %s: footer index failed validation "
                     "(CRC/structure mismatch); read fell back to a "
                     "sequential walk\n",
                     in_path.c_str());
      }
      if (result.corrupt_blocks > 0) {
        damaged = true;
        std::fprintf(stderr, "s2s_recconv: %s: %zu corrupt block(s) skipped\n",
                     in_path.c_str(), result.corrupt_blocks);
      }
      if (damaged) return 1;
    }
    return 0;
  }

  if (mode == "repair") {
    const auto res = io::recover_archive(in_path);
    if (!res.ok) {
      std::fprintf(stderr, "s2s_recconv: %s: %s\n", in_path.c_str(),
                   res.error.c_str());
      return 1;
    }
    std::printf("%s: %s: blocks_kept=%zu records_kept=%zu "
                "bytes_dropped=%zu\n",
                in_path.c_str(),
                res.repaired ? "repaired" : "already intact", res.blocks_kept,
                res.records_kept, res.bytes_dropped);
    return 0;
  }

  if (argc < 4) return usage();
  const std::string out_path = argv[3];

  if (mode == "to-binary") {
    io::BinWriterConfig config;
    for (int i = 4; i + 1 < argc; i += 2) {
      if (std::strcmp(argv[i], "--block-records") == 0) {
        config.block_records =
            static_cast<std::size_t>(std::strtoull(argv[i + 1], nullptr, 10));
      } else {
        return usage();
      }
    }
    io::AtomicArchiveWriter out(out_path);
    if (!out.ok()) {
      std::fprintf(stderr, "s2s_recconv: %s\n", out.error().c_str());
      return 1;
    }
    io::BinRecordWriter writer(out.stream(), config);
    const auto result = io::ingest_record_file(
        in_path, [&](const probe::TracerouteRecord& r) { writer.write(r); },
        [&](const probe::PingRecord& r) { writer.write(r); });
    if (!result.ok) {
      std::fprintf(stderr, "s2s_recconv: %s\n", result.error.c_str());
      return 1;
    }
    writer.finish();
    if (std::string commit_error; !out.commit(commit_error)) {
      std::fprintf(stderr, "s2s_recconv: %s\n", commit_error.c_str());
      return 1;
    }
    print_result(in_path.c_str(), result);
    std::printf("%s: blocks=%zu bytes=%zu\n", out_path.c_str(),
                writer.blocks_written(), writer.bytes_written());
    return 0;
  }

  if (mode == "to-text") {
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "s2s_recconv: %s: open failed\n",
                   out_path.c_str());
      return 1;
    }
    io::RecordWriter writer(out);
    const auto result = io::ingest_record_file(
        in_path, [&](const probe::TracerouteRecord& r) { writer.write(r); },
        [&](const probe::PingRecord& r) { writer.write(r); });
    if (!result.ok) {
      std::fprintf(stderr, "s2s_recconv: %s\n", result.error.c_str());
      return 1;
    }
    out.flush();
    if (!out) {
      std::fprintf(stderr, "s2s_recconv: %s: write failed\n",
                   out_path.c_str());
      return 1;
    }
    print_result(in_path.c_str(), result);
    std::printf("%s: records=%zu\n", out_path.c_str(), writer.written());
    return 0;
  }

  return usage();
}
