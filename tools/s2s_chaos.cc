// s2s_chaos — deterministic TCP fault injector for the serving path
// (DESIGN.md section 12).
//
//   s2s_chaos --upstream-port N [options]
//
// Options:
//   --host A               bind address            (default 127.0.0.1)
//   --port N               listen port             (default 0 = ephemeral)
//   --upstream-host A      upstream address        (default 127.0.0.1)
//   --seed N               fault-draw seed         (default 99)
//   --latency-ms N         base one-way delay per chunk
//   --jitter-ms N          extra uniform delay in [0, N)
//   --bandwidth-bps N      per-direction byte/s cap (0 = uncapped)
//   --reset-prob P         per-chunk connection reset probability
//   --truncate-prob P      per-chunk mid-frame truncation probability
//   --stall-prob P         per-chunk half-open stall probability
//   --corrupt-prob P       per-chunk single-byte corruption probability
//   --blackout-first N     close the first N accepted connections unserved
//   --stall-first N        stall upstream->client on the first N connections
//   --report PATH          RunReport JSON on shutdown (default none)
//
// Prints "s2s_chaos: listening on HOST:PORT" once ready (scripts parse
// this line), relays until SIGINT/SIGTERM, then prints the injected-
// fault ground truth as JSON on stdout. Exit status: 0 on clean drain,
// 1 on startup failure, 2 on usage error.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "faultsim/chaos_proxy.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/run_report.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

int usage() {
  std::fprintf(stderr,
               "usage: s2s_chaos --upstream-port N [--host A] [--port N]\n"
               "                 [--upstream-host A] [--seed N]\n"
               "                 [--latency-ms N] [--jitter-ms N]\n"
               "                 [--bandwidth-bps N] [--reset-prob P]\n"
               "                 [--truncate-prob P] [--stall-prob P]\n"
               "                 [--corrupt-prob P] [--blackout-first N]\n"
               "                 [--stall-first N] [--report PATH]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace s2s;

  faultsim::ChaosConfig cfg;
  std::string report_path;

  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (!std::strcmp(argv[i], "--host")) cfg.bind_address = next();
    else if (!std::strcmp(argv[i], "--port")) {
      cfg.port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--upstream-host")) {
      cfg.upstream_host = next();
    } else if (!std::strcmp(argv[i], "--upstream-port")) {
      cfg.upstream_port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--seed")) {
      cfg.seed = std::strtoull(next(), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--latency-ms")) {
      cfg.latency_ms = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--jitter-ms")) {
      cfg.jitter_ms = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--bandwidth-bps")) {
      cfg.bytes_per_sec = static_cast<std::size_t>(
          std::strtoull(next(), nullptr, 10));
    } else if (!std::strcmp(argv[i], "--reset-prob")) {
      cfg.reset_prob = std::atof(next());
    } else if (!std::strcmp(argv[i], "--truncate-prob")) {
      cfg.truncate_prob = std::atof(next());
    } else if (!std::strcmp(argv[i], "--stall-prob")) {
      cfg.stall_prob = std::atof(next());
    } else if (!std::strcmp(argv[i], "--corrupt-prob")) {
      cfg.corrupt_prob = std::atof(next());
    } else if (!std::strcmp(argv[i], "--blackout-first")) {
      cfg.blackout_first_conns = static_cast<std::size_t>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--stall-first")) {
      cfg.stall_first_conns = static_cast<std::size_t>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--report")) {
      report_path = next();
    } else {
      return usage();
    }
  }
  if (cfg.upstream_port == 0) return usage();

  obs::MetricsRegistry::global().reset();

  faultsim::ChaosProxy proxy(cfg);
  std::string error;
  if (!proxy.start(error)) {
    std::fprintf(stderr, "s2s_chaos: %s\n", error.c_str());
    return 1;
  }
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
#ifdef SIGPIPE
  std::signal(SIGPIPE, SIG_IGN);
#endif

  std::printf("s2s_chaos: listening on %s:%u (upstream %s:%u, seed %llu)\n",
              cfg.bind_address.c_str(), static_cast<unsigned>(proxy.port()),
              cfg.upstream_host.c_str(),
              static_cast<unsigned>(cfg.upstream_port),
              static_cast<unsigned long long>(cfg.seed));
  std::fflush(stdout);

  while (g_stop == 0) {
    struct timespec ts = {0, 50 * 1000 * 1000};
    ::nanosleep(&ts, nullptr);
  }
  proxy.stop();

  const auto s = proxy.stats();
  std::printf(
      "{\"connections\":%llu,\"blackouts\":%llu,\"chunks_forwarded\":%llu,"
      "\"bytes_forwarded\":%llu,\"corrupted\":%llu,\"truncated\":%llu,"
      "\"resets\":%llu,\"stalls\":%llu,\"delayed_chunks\":%llu,"
      "\"failure_faults\":%llu}\n",
      static_cast<unsigned long long>(s.connections),
      static_cast<unsigned long long>(s.blackouts),
      static_cast<unsigned long long>(s.chunks_forwarded),
      static_cast<unsigned long long>(s.bytes_forwarded),
      static_cast<unsigned long long>(s.corrupted),
      static_cast<unsigned long long>(s.truncated),
      static_cast<unsigned long long>(s.resets),
      static_cast<unsigned long long>(s.stalls),
      static_cast<unsigned long long>(s.delayed_chunks),
      static_cast<unsigned long long>(s.failure_faults()));

  if (!report_path.empty()) {
    obs::RunReport report = obs::build_run_report("s2s_chaos");
    if (!obs::write_text_file(report_path, report.to_json())) return 1;
    obs::logf(obs::LogLevel::kInfo, "run report: %s", report_path.c_str());
  }
  return 0;
}
