file(REMOVE_RECURSE
  "CMakeFiles/dualstack_advisor.dir/dualstack_advisor.cpp.o"
  "CMakeFiles/dualstack_advisor.dir/dualstack_advisor.cpp.o.d"
  "dualstack_advisor"
  "dualstack_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dualstack_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
