# Empty dependencies file for dualstack_advisor.
# This may be replaced when dependencies are built.
