file(REMOVE_RECURSE
  "CMakeFiles/routing_change_report.dir/routing_change_report.cpp.o"
  "CMakeFiles/routing_change_report.dir/routing_change_report.cpp.o.d"
  "routing_change_report"
  "routing_change_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_change_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
