# Empty compiler generated dependencies file for routing_change_report.
# This may be replaced when dependencies are built.
