file(REMOVE_RECURSE
  "CMakeFiles/congestion_localizer.dir/congestion_localizer.cpp.o"
  "CMakeFiles/congestion_localizer.dir/congestion_localizer.cpp.o.d"
  "congestion_localizer"
  "congestion_localizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congestion_localizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
