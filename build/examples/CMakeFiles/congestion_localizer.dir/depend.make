# Empty dependencies file for congestion_localizer.
# This may be replaced when dependencies are built.
