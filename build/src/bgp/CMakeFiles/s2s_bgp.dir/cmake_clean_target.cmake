file(REMOVE_RECURSE
  "libs2s_bgp.a"
)
