file(REMOVE_RECURSE
  "CMakeFiles/s2s_bgp.dir/relationships.cc.o"
  "CMakeFiles/s2s_bgp.dir/relationships.cc.o.d"
  "CMakeFiles/s2s_bgp.dir/rib.cc.o"
  "CMakeFiles/s2s_bgp.dir/rib.cc.o.d"
  "libs2s_bgp.a"
  "libs2s_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2s_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
