# Empty compiler generated dependencies file for s2s_bgp.
# This may be replaced when dependencies are built.
