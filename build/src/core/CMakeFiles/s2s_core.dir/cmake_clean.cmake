file(REMOVE_RECURSE
  "CMakeFiles/s2s_core.dir/as_path_infer.cc.o"
  "CMakeFiles/s2s_core.dir/as_path_infer.cc.o.d"
  "CMakeFiles/s2s_core.dir/change_detect.cc.o"
  "CMakeFiles/s2s_core.dir/change_detect.cc.o.d"
  "CMakeFiles/s2s_core.dir/congestion_detect.cc.o"
  "CMakeFiles/s2s_core.dir/congestion_detect.cc.o.d"
  "CMakeFiles/s2s_core.dir/congestion_study.cc.o"
  "CMakeFiles/s2s_core.dir/congestion_study.cc.o.d"
  "CMakeFiles/s2s_core.dir/dualstack.cc.o"
  "CMakeFiles/s2s_core.dir/dualstack.cc.o.d"
  "CMakeFiles/s2s_core.dir/inflation.cc.o"
  "CMakeFiles/s2s_core.dir/inflation.cc.o.d"
  "CMakeFiles/s2s_core.dir/link_classify.cc.o"
  "CMakeFiles/s2s_core.dir/link_classify.cc.o.d"
  "CMakeFiles/s2s_core.dir/localize.cc.o"
  "CMakeFiles/s2s_core.dir/localize.cc.o.d"
  "CMakeFiles/s2s_core.dir/ownership.cc.o"
  "CMakeFiles/s2s_core.dir/ownership.cc.o.d"
  "CMakeFiles/s2s_core.dir/path_stats.cc.o"
  "CMakeFiles/s2s_core.dir/path_stats.cc.o.d"
  "CMakeFiles/s2s_core.dir/ping_series.cc.o"
  "CMakeFiles/s2s_core.dir/ping_series.cc.o.d"
  "CMakeFiles/s2s_core.dir/routing_study.cc.o"
  "CMakeFiles/s2s_core.dir/routing_study.cc.o.d"
  "CMakeFiles/s2s_core.dir/segment_series.cc.o"
  "CMakeFiles/s2s_core.dir/segment_series.cc.o.d"
  "CMakeFiles/s2s_core.dir/timeline.cc.o"
  "CMakeFiles/s2s_core.dir/timeline.cc.o.d"
  "libs2s_core.a"
  "libs2s_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2s_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
