
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/as_path_infer.cc" "src/core/CMakeFiles/s2s_core.dir/as_path_infer.cc.o" "gcc" "src/core/CMakeFiles/s2s_core.dir/as_path_infer.cc.o.d"
  "/root/repo/src/core/change_detect.cc" "src/core/CMakeFiles/s2s_core.dir/change_detect.cc.o" "gcc" "src/core/CMakeFiles/s2s_core.dir/change_detect.cc.o.d"
  "/root/repo/src/core/congestion_detect.cc" "src/core/CMakeFiles/s2s_core.dir/congestion_detect.cc.o" "gcc" "src/core/CMakeFiles/s2s_core.dir/congestion_detect.cc.o.d"
  "/root/repo/src/core/congestion_study.cc" "src/core/CMakeFiles/s2s_core.dir/congestion_study.cc.o" "gcc" "src/core/CMakeFiles/s2s_core.dir/congestion_study.cc.o.d"
  "/root/repo/src/core/dualstack.cc" "src/core/CMakeFiles/s2s_core.dir/dualstack.cc.o" "gcc" "src/core/CMakeFiles/s2s_core.dir/dualstack.cc.o.d"
  "/root/repo/src/core/inflation.cc" "src/core/CMakeFiles/s2s_core.dir/inflation.cc.o" "gcc" "src/core/CMakeFiles/s2s_core.dir/inflation.cc.o.d"
  "/root/repo/src/core/link_classify.cc" "src/core/CMakeFiles/s2s_core.dir/link_classify.cc.o" "gcc" "src/core/CMakeFiles/s2s_core.dir/link_classify.cc.o.d"
  "/root/repo/src/core/localize.cc" "src/core/CMakeFiles/s2s_core.dir/localize.cc.o" "gcc" "src/core/CMakeFiles/s2s_core.dir/localize.cc.o.d"
  "/root/repo/src/core/ownership.cc" "src/core/CMakeFiles/s2s_core.dir/ownership.cc.o" "gcc" "src/core/CMakeFiles/s2s_core.dir/ownership.cc.o.d"
  "/root/repo/src/core/path_stats.cc" "src/core/CMakeFiles/s2s_core.dir/path_stats.cc.o" "gcc" "src/core/CMakeFiles/s2s_core.dir/path_stats.cc.o.d"
  "/root/repo/src/core/ping_series.cc" "src/core/CMakeFiles/s2s_core.dir/ping_series.cc.o" "gcc" "src/core/CMakeFiles/s2s_core.dir/ping_series.cc.o.d"
  "/root/repo/src/core/routing_study.cc" "src/core/CMakeFiles/s2s_core.dir/routing_study.cc.o" "gcc" "src/core/CMakeFiles/s2s_core.dir/routing_study.cc.o.d"
  "/root/repo/src/core/segment_series.cc" "src/core/CMakeFiles/s2s_core.dir/segment_series.cc.o" "gcc" "src/core/CMakeFiles/s2s_core.dir/segment_series.cc.o.d"
  "/root/repo/src/core/timeline.cc" "src/core/CMakeFiles/s2s_core.dir/timeline.cc.o" "gcc" "src/core/CMakeFiles/s2s_core.dir/timeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/probe/CMakeFiles/s2s_probe.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/s2s_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/s2s_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/s2s_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/s2s_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/s2s_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/s2s_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
