file(REMOVE_RECURSE
  "libs2s_core.a"
)
