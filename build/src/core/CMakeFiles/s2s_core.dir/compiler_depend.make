# Empty compiler generated dependencies file for s2s_core.
# This may be replaced when dependencies are built.
