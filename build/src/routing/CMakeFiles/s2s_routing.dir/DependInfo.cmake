
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/candidates.cc" "src/routing/CMakeFiles/s2s_routing.dir/candidates.cc.o" "gcc" "src/routing/CMakeFiles/s2s_routing.dir/candidates.cc.o.d"
  "/root/repo/src/routing/dynamics.cc" "src/routing/CMakeFiles/s2s_routing.dir/dynamics.cc.o" "gcc" "src/routing/CMakeFiles/s2s_routing.dir/dynamics.cc.o.d"
  "/root/repo/src/routing/valley_free.cc" "src/routing/CMakeFiles/s2s_routing.dir/valley_free.cc.o" "gcc" "src/routing/CMakeFiles/s2s_routing.dir/valley_free.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/s2s_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/s2s_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/s2s_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
