file(REMOVE_RECURSE
  "libs2s_routing.a"
)
