file(REMOVE_RECURSE
  "CMakeFiles/s2s_routing.dir/candidates.cc.o"
  "CMakeFiles/s2s_routing.dir/candidates.cc.o.d"
  "CMakeFiles/s2s_routing.dir/dynamics.cc.o"
  "CMakeFiles/s2s_routing.dir/dynamics.cc.o.d"
  "CMakeFiles/s2s_routing.dir/valley_free.cc.o"
  "CMakeFiles/s2s_routing.dir/valley_free.cc.o.d"
  "libs2s_routing.a"
  "libs2s_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2s_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
