# Empty dependencies file for s2s_routing.
# This may be replaced when dependencies are built.
