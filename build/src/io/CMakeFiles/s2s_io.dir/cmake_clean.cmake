file(REMOVE_RECURSE
  "CMakeFiles/s2s_io.dir/records_io.cc.o"
  "CMakeFiles/s2s_io.dir/records_io.cc.o.d"
  "libs2s_io.a"
  "libs2s_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2s_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
