# Empty compiler generated dependencies file for s2s_io.
# This may be replaced when dependencies are built.
