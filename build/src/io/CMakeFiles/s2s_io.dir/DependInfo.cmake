
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/records_io.cc" "src/io/CMakeFiles/s2s_io.dir/records_io.cc.o" "gcc" "src/io/CMakeFiles/s2s_io.dir/records_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/s2s_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/s2s_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/s2s_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
