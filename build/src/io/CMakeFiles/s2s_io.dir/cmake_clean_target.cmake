file(REMOVE_RECURSE
  "libs2s_io.a"
)
