file(REMOVE_RECURSE
  "libs2s_net.a"
)
