# Empty dependencies file for s2s_net.
# This may be replaced when dependencies are built.
