file(REMOVE_RECURSE
  "CMakeFiles/s2s_net.dir/asn.cc.o"
  "CMakeFiles/s2s_net.dir/asn.cc.o.d"
  "CMakeFiles/s2s_net.dir/geo.cc.o"
  "CMakeFiles/s2s_net.dir/geo.cc.o.d"
  "CMakeFiles/s2s_net.dir/ip.cc.o"
  "CMakeFiles/s2s_net.dir/ip.cc.o.d"
  "CMakeFiles/s2s_net.dir/prefix.cc.o"
  "CMakeFiles/s2s_net.dir/prefix.cc.o.d"
  "CMakeFiles/s2s_net.dir/timebase.cc.o"
  "CMakeFiles/s2s_net.dir/timebase.cc.o.d"
  "libs2s_net.a"
  "libs2s_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2s_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
