
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/asn.cc" "src/net/CMakeFiles/s2s_net.dir/asn.cc.o" "gcc" "src/net/CMakeFiles/s2s_net.dir/asn.cc.o.d"
  "/root/repo/src/net/geo.cc" "src/net/CMakeFiles/s2s_net.dir/geo.cc.o" "gcc" "src/net/CMakeFiles/s2s_net.dir/geo.cc.o.d"
  "/root/repo/src/net/ip.cc" "src/net/CMakeFiles/s2s_net.dir/ip.cc.o" "gcc" "src/net/CMakeFiles/s2s_net.dir/ip.cc.o.d"
  "/root/repo/src/net/prefix.cc" "src/net/CMakeFiles/s2s_net.dir/prefix.cc.o" "gcc" "src/net/CMakeFiles/s2s_net.dir/prefix.cc.o.d"
  "/root/repo/src/net/timebase.cc" "src/net/CMakeFiles/s2s_net.dir/timebase.cc.o" "gcc" "src/net/CMakeFiles/s2s_net.dir/timebase.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
