file(REMOVE_RECURSE
  "CMakeFiles/s2s_topology.dir/cities.cc.o"
  "CMakeFiles/s2s_topology.dir/cities.cc.o.d"
  "CMakeFiles/s2s_topology.dir/generator.cc.o"
  "CMakeFiles/s2s_topology.dir/generator.cc.o.d"
  "CMakeFiles/s2s_topology.dir/topology.cc.o"
  "CMakeFiles/s2s_topology.dir/topology.cc.o.d"
  "libs2s_topology.a"
  "libs2s_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2s_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
