
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/cities.cc" "src/topology/CMakeFiles/s2s_topology.dir/cities.cc.o" "gcc" "src/topology/CMakeFiles/s2s_topology.dir/cities.cc.o.d"
  "/root/repo/src/topology/generator.cc" "src/topology/CMakeFiles/s2s_topology.dir/generator.cc.o" "gcc" "src/topology/CMakeFiles/s2s_topology.dir/generator.cc.o.d"
  "/root/repo/src/topology/topology.cc" "src/topology/CMakeFiles/s2s_topology.dir/topology.cc.o" "gcc" "src/topology/CMakeFiles/s2s_topology.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/s2s_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/s2s_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
