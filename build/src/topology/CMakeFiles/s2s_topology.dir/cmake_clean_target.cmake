file(REMOVE_RECURSE
  "libs2s_topology.a"
)
