# Empty compiler generated dependencies file for s2s_topology.
# This may be replaced when dependencies are built.
