file(REMOVE_RECURSE
  "libs2s_stats.a"
)
