# Empty compiler generated dependencies file for s2s_stats.
# This may be replaced when dependencies are built.
