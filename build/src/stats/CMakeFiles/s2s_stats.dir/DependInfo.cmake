
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/binned_ecdf.cc" "src/stats/CMakeFiles/s2s_stats.dir/binned_ecdf.cc.o" "gcc" "src/stats/CMakeFiles/s2s_stats.dir/binned_ecdf.cc.o.d"
  "/root/repo/src/stats/density.cc" "src/stats/CMakeFiles/s2s_stats.dir/density.cc.o" "gcc" "src/stats/CMakeFiles/s2s_stats.dir/density.cc.o.d"
  "/root/repo/src/stats/ecdf.cc" "src/stats/CMakeFiles/s2s_stats.dir/ecdf.cc.o" "gcc" "src/stats/CMakeFiles/s2s_stats.dir/ecdf.cc.o.d"
  "/root/repo/src/stats/fft.cc" "src/stats/CMakeFiles/s2s_stats.dir/fft.cc.o" "gcc" "src/stats/CMakeFiles/s2s_stats.dir/fft.cc.o.d"
  "/root/repo/src/stats/heatmap.cc" "src/stats/CMakeFiles/s2s_stats.dir/heatmap.cc.o" "gcc" "src/stats/CMakeFiles/s2s_stats.dir/heatmap.cc.o.d"
  "/root/repo/src/stats/pearson.cc" "src/stats/CMakeFiles/s2s_stats.dir/pearson.cc.o" "gcc" "src/stats/CMakeFiles/s2s_stats.dir/pearson.cc.o.d"
  "/root/repo/src/stats/summary.cc" "src/stats/CMakeFiles/s2s_stats.dir/summary.cc.o" "gcc" "src/stats/CMakeFiles/s2s_stats.dir/summary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
