file(REMOVE_RECURSE
  "CMakeFiles/s2s_stats.dir/binned_ecdf.cc.o"
  "CMakeFiles/s2s_stats.dir/binned_ecdf.cc.o.d"
  "CMakeFiles/s2s_stats.dir/density.cc.o"
  "CMakeFiles/s2s_stats.dir/density.cc.o.d"
  "CMakeFiles/s2s_stats.dir/ecdf.cc.o"
  "CMakeFiles/s2s_stats.dir/ecdf.cc.o.d"
  "CMakeFiles/s2s_stats.dir/fft.cc.o"
  "CMakeFiles/s2s_stats.dir/fft.cc.o.d"
  "CMakeFiles/s2s_stats.dir/heatmap.cc.o"
  "CMakeFiles/s2s_stats.dir/heatmap.cc.o.d"
  "CMakeFiles/s2s_stats.dir/pearson.cc.o"
  "CMakeFiles/s2s_stats.dir/pearson.cc.o.d"
  "CMakeFiles/s2s_stats.dir/summary.cc.o"
  "CMakeFiles/s2s_stats.dir/summary.cc.o.d"
  "libs2s_stats.a"
  "libs2s_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2s_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
