file(REMOVE_RECURSE
  "libs2s_simnet.a"
)
