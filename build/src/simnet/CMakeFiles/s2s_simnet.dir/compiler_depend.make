# Empty compiler generated dependencies file for s2s_simnet.
# This may be replaced when dependencies are built.
