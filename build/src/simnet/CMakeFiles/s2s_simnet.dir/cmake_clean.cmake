file(REMOVE_RECURSE
  "CMakeFiles/s2s_simnet.dir/congestion.cc.o"
  "CMakeFiles/s2s_simnet.dir/congestion.cc.o.d"
  "CMakeFiles/s2s_simnet.dir/network.cc.o"
  "CMakeFiles/s2s_simnet.dir/network.cc.o.d"
  "CMakeFiles/s2s_simnet.dir/router_path.cc.o"
  "CMakeFiles/s2s_simnet.dir/router_path.cc.o.d"
  "libs2s_simnet.a"
  "libs2s_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2s_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
