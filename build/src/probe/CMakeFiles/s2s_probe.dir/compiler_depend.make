# Empty compiler generated dependencies file for s2s_probe.
# This may be replaced when dependencies are built.
