file(REMOVE_RECURSE
  "libs2s_probe.a"
)
