file(REMOVE_RECURSE
  "CMakeFiles/s2s_probe.dir/campaign.cc.o"
  "CMakeFiles/s2s_probe.dir/campaign.cc.o.d"
  "CMakeFiles/s2s_probe.dir/ping.cc.o"
  "CMakeFiles/s2s_probe.dir/ping.cc.o.d"
  "CMakeFiles/s2s_probe.dir/traceroute.cc.o"
  "CMakeFiles/s2s_probe.dir/traceroute.cc.o.d"
  "libs2s_probe.a"
  "libs2s_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2s_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
