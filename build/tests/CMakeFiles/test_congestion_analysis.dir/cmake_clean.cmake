file(REMOVE_RECURSE
  "CMakeFiles/test_congestion_analysis.dir/test_congestion_analysis.cc.o"
  "CMakeFiles/test_congestion_analysis.dir/test_congestion_analysis.cc.o.d"
  "test_congestion_analysis"
  "test_congestion_analysis.pdb"
  "test_congestion_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_congestion_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
