# Empty compiler generated dependencies file for test_congestion_analysis.
# This may be replaced when dependencies are built.
