file(REMOVE_RECURSE
  "CMakeFiles/test_valley_free.dir/test_valley_free.cc.o"
  "CMakeFiles/test_valley_free.dir/test_valley_free.cc.o.d"
  "test_valley_free"
  "test_valley_free.pdb"
  "test_valley_free[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_valley_free.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
