# Empty compiler generated dependencies file for test_valley_free.
# This may be replaced when dependencies are built.
