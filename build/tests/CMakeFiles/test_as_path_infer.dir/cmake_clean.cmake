file(REMOVE_RECURSE
  "CMakeFiles/test_as_path_infer.dir/test_as_path_infer.cc.o"
  "CMakeFiles/test_as_path_infer.dir/test_as_path_infer.cc.o.d"
  "test_as_path_infer"
  "test_as_path_infer.pdb"
  "test_as_path_infer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_as_path_infer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
