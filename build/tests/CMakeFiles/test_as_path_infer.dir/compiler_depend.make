# Empty compiler generated dependencies file for test_as_path_infer.
# This may be replaced when dependencies are built.
