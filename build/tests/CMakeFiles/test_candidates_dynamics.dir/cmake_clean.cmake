file(REMOVE_RECURSE
  "CMakeFiles/test_candidates_dynamics.dir/test_candidates_dynamics.cc.o"
  "CMakeFiles/test_candidates_dynamics.dir/test_candidates_dynamics.cc.o.d"
  "test_candidates_dynamics"
  "test_candidates_dynamics.pdb"
  "test_candidates_dynamics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_candidates_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
