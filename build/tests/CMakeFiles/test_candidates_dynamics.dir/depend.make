# Empty dependencies file for test_candidates_dynamics.
# This may be replaced when dependencies are built.
