
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_prefix.cc" "tests/CMakeFiles/test_prefix.dir/test_prefix.cc.o" "gcc" "tests/CMakeFiles/test_prefix.dir/test_prefix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/io/CMakeFiles/s2s_io.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/s2s_core.dir/DependInfo.cmake"
  "/root/repo/build/src/probe/CMakeFiles/s2s_probe.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/s2s_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/s2s_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/s2s_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/s2s_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/s2s_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/s2s_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
