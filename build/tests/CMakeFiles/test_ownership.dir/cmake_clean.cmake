file(REMOVE_RECURSE
  "CMakeFiles/test_ownership.dir/test_ownership.cc.o"
  "CMakeFiles/test_ownership.dir/test_ownership.cc.o.d"
  "test_ownership"
  "test_ownership.pdb"
  "test_ownership[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ownership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
