file(REMOVE_RECURSE
  "CMakeFiles/test_records_io.dir/test_records_io.cc.o"
  "CMakeFiles/test_records_io.dir/test_records_io.cc.o.d"
  "test_records_io"
  "test_records_io.pdb"
  "test_records_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_records_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
