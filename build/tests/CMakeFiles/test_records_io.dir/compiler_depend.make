# Empty compiler generated dependencies file for test_records_io.
# This may be replaced when dependencies are built.
