# Empty dependencies file for test_geo_time.
# This may be replaced when dependencies are built.
