file(REMOVE_RECURSE
  "CMakeFiles/test_geo_time.dir/test_geo_time.cc.o"
  "CMakeFiles/test_geo_time.dir/test_geo_time.cc.o.d"
  "test_geo_time"
  "test_geo_time.pdb"
  "test_geo_time[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geo_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
