file(REMOVE_RECURSE
  "CMakeFiles/test_network_failover.dir/test_network_failover.cc.o"
  "CMakeFiles/test_network_failover.dir/test_network_failover.cc.o.d"
  "test_network_failover"
  "test_network_failover.pdb"
  "test_network_failover[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
