# Empty dependencies file for test_network_failover.
# This may be replaced when dependencies are built.
