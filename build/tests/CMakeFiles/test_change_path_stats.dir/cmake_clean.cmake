file(REMOVE_RECURSE
  "CMakeFiles/test_change_path_stats.dir/test_change_path_stats.cc.o"
  "CMakeFiles/test_change_path_stats.dir/test_change_path_stats.cc.o.d"
  "test_change_path_stats"
  "test_change_path_stats.pdb"
  "test_change_path_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_change_path_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
