# Empty compiler generated dependencies file for test_change_path_stats.
# This may be replaced when dependencies are built.
