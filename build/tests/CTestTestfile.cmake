# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_ip[1]_include.cmake")
include("/root/repo/build/tests/test_prefix[1]_include.cmake")
include("/root/repo/build/tests/test_geo_time[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_fft[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_valley_free[1]_include.cmake")
include("/root/repo/build/tests/test_candidates_dynamics[1]_include.cmake")
include("/root/repo/build/tests/test_simnet[1]_include.cmake")
include("/root/repo/build/tests/test_bgp[1]_include.cmake")
include("/root/repo/build/tests/test_probe[1]_include.cmake")
include("/root/repo/build/tests/test_as_path_infer[1]_include.cmake")
include("/root/repo/build/tests/test_change_path_stats[1]_include.cmake")
include("/root/repo/build/tests/test_congestion_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_ownership[1]_include.cmake")
include("/root/repo/build/tests/test_studies[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_records_io[1]_include.cmake")
include("/root/repo/build/tests/test_network_failover[1]_include.cmake")
