file(REMOVE_RECURSE
  "CMakeFiles/bench_sec51.dir/bench_sec51.cc.o"
  "CMakeFiles/bench_sec51.dir/bench_sec51.cc.o.d"
  "bench_sec51"
  "bench_sec51.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec51.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
