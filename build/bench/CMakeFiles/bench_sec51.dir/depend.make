# Empty dependencies file for bench_sec51.
# This may be replaced when dependencies are built.
