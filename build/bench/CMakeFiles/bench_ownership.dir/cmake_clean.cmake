file(REMOVE_RECURSE
  "CMakeFiles/bench_ownership.dir/bench_ownership.cc.o"
  "CMakeFiles/bench_ownership.dir/bench_ownership.cc.o.d"
  "bench_ownership"
  "bench_ownership.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ownership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
