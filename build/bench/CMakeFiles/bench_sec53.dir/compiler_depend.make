# Empty compiler generated dependencies file for bench_sec53.
# This may be replaced when dependencies are built.
