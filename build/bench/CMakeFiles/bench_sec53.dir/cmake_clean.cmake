file(REMOVE_RECURSE
  "CMakeFiles/bench_sec53.dir/bench_sec53.cc.o"
  "CMakeFiles/bench_sec53.dir/bench_sec53.cc.o.d"
  "bench_sec53"
  "bench_sec53.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec53.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
